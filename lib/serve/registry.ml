module D = Datalog

type entry = {
  key : string;
  form : D.Atom.t;
  live : Core.Live.t;
  lock : Mutex.t;
}

type t = {
  lock : Mutex.t;
  rulebase : D.Rulebase.t;
  learner : Core.Learner.kind;
  config : Core.Learner.config;
  metrics : Metrics.t;
  entries : (string, entry) Hashtbl.t;
}

let create ?(learner = `Pib) ?(config = Core.Learner.default_config) ~rulebase
    metrics =
  {
    lock = Mutex.create ();
    rulebase;
    learner;
    config;
    metrics;
    entries = Hashtbl.create 8;
  }

let form_of_query (q : D.Atom.t) =
  let args =
    List.mapi
      (fun i t ->
        if D.Term.is_const t then D.Term.const "q"
        else D.Term.var (Printf.sprintf "X%d" i))
      q.D.Atom.args
  in
  D.Atom.make_sym q.D.Atom.pred args

let key_of_form (form : D.Atom.t) =
  let sanitize c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
    | _ -> '-'
  in
  let adornment =
    D.Atom.adornment form
    |> List.map (function `B -> "b" | `F -> "f")
    |> String.concat ""
  in
  Printf.sprintf "%s_%d%s%s"
    (String.map sanitize (D.Symbol.to_string form.D.Atom.pred))
    (D.Atom.arity form)
    (if adornment = "" then "" else "_")
    adornment

let render live =
  Format.asprintf "%a" Strategy.Spec.pp_dfs (Core.Live.strategy live)

let with_live (entry : entry) f =
  Mutex.lock entry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock entry.lock) (fun () ->
      f entry.live)

let strategy_string entry = with_live entry render

(* Forward the learner's telemetry into the per-form convergence
   gauges. The hook fires on every observation (bound check), climb,
   and adopted conjecture — the gauges always show the latest
   reading. *)
let publish_progress metrics ~form (p : Core.Learner.progress) =
  Metrics.learner_progress metrics ~form
    ~samples:p.Core.Learner.samples
    ~samples_total:p.Core.Learner.samples_total
    ~climbs:p.Core.Learner.climbs ~epsilon:p.Core.Learner.epsilon
    ~delta:p.Core.Learner.delta ~finished:p.Core.Learner.finished

let install_telemetry metrics ~form live =
  Core.Live.on_event live (fun ev ->
      match ev with
      | Core.Learner.Observed p
      | Core.Learner.Climbed p
      | Core.Learner.Conjectured p -> publish_progress metrics ~form p);
  publish_progress metrics ~form
    (Core.Learner.progress (Core.Live.learner live))

let find_or_create t atom =
  let form = form_of_query atom in
  let key = key_of_form form in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.entries key with
      | Some e -> e
      | None ->
        let live =
          Core.Live.create ~learner:t.learner ~config:t.config
            ~rulebase:t.rulebase ~query_form:form ()
        in
        let e = { key; form; live; lock = Mutex.create () } in
        Hashtbl.add t.entries key e;
        install_telemetry t.metrics ~form:key live;
        Metrics.set_form_strategy t.metrics ~form:key (render live);
        e)

let learner_kind t = t.learner

(* Cap on the distinct answers a cache fill enumerates past the first
   success node (subsumption mode). Bounds both the fill's tail work and
   the row scans later derived probes pay; a set cut by the cap is stored
   incomplete, so it can still prove membership but never absence. *)
let subsume_enumerate_cap = 1024

(* Only fully-free query forms (every argument a variable) enumerate
   their answer set: they are the natural generalization roots — one per
   predicate/arity modulo repeated variables — so the enumeration
   investment is paid O(#forms) times, not per distinct query. Partially
   bound queries still enter the subsumption index with their first
   answer (good for derived "no"s and ground children), at no extra SLD
   cost. *)
let enumerable (q : D.Atom.t) =
  q.D.Atom.args <> []
  && List.for_all (fun t -> not (D.Term.is_const t)) q.D.Atom.args

let answer ?(tracer = Trace.null) ?parent ?cache ?memo t ~db q =
  let entry = find_or_create t q in
  (* Cache service is visible in traces as an event on the caller's span:
     a hit records what the fill paid and was saved; a miss is a marker. *)
  let cache_event kind attrs =
    match parent with
    | Some sp when Trace.enabled tracer ->
      Trace.event tracer sp ~kind ~attrs (D.Atom.to_string q)
    | _ -> ()
  in
  let subsume =
    match cache with
    | Some c -> Cache.Answers.subsume_enabled c
    | None -> false
  in
  let ans, strategy =
    with_live entry (fun live ->
        let probe_t0 = if subsume then Unix.gettimeofday () else 0.0 in
        let hit =
          match cache with
          | Some c -> Cache.Answers.find c ~db q
          | None -> None
        in
        (* The subsumption probe piggybacks on the exact lookup; its
           latency (candidate walk + row filtering) is only distinguishable
           from the exact path when the exact key missed. *)
        let probe_us () = (Unix.gettimeofday () -. probe_t0) *. 1e6 in
        let a =
          match hit with
          | Some h ->
            if subsume && h.Cache.Answers.derived then
              Metrics.cache_filter t.metrics (probe_us ());
            cache_event "cache_hit"
              ([
                 ( "saved_reductions",
                   string_of_int h.Cache.Answers.reductions );
                 ( "saved_retrievals",
                   string_of_int h.Cache.Answers.retrievals );
                 ("fill_cost", Printf.sprintf "%g" h.Cache.Answers.cost);
               ]
              @
              if h.Cache.Answers.derived then [ ("derived", "true") ]
              else []);
            Core.Live.answer_cached ~tracer ?parent
              ~derived:h.Cache.Answers.derived live ~db
              ~result:h.Cache.Answers.result q
          | None ->
            if subsume then Metrics.cache_filter t.metrics (probe_us ());
            if Option.is_some cache then cache_event "cache_miss" [];
            let enumerate =
              if subsume && enumerable q then subsume_enumerate_cap else 0
            in
            let a =
              Core.Live.answer ~tracer ?parent ?memo ~enumerate live ~db q
            in
            (match cache with
            | Some c when not a.Core.Live.stats.D.Sld.truncated ->
              (* A truncated non-answer is "unknown", not "no" — never
                 cache it. *)
              let answers =
                Option.map
                  (fun (e : D.Sld.enum) -> (e.D.Sld.answers, e.D.Sld.complete))
                  a.Core.Live.enumerated
              in
              Cache.Answers.store c ~db ?answers q ~result:a.Core.Live.result
                ~reductions:a.Core.Live.stats.D.Sld.reductions
                ~retrievals:a.Core.Live.stats.D.Sld.retrievals
                ~cost:a.Core.Live.cost;
              (* Memoized ground-subgoal verdicts seeded from the general
                 run: every enumerated answer instantiates the query to a
                 ground fact-of-the-form that later, more specific SLD
                 runs can take as proved. *)
              (match (memo, a.Core.Live.enumerated) with
              | Some m, Some en ->
                let token = D.Database.token db
                and gen = D.Database.generation db in
                List.iter
                  (fun s ->
                    let inst = D.Subst.apply_atom s q in
                    if D.Atom.is_ground inst then
                      D.Sld.Memo.add m ~token ~gen inst true)
                  en.D.Sld.answers
              | _ -> ())
            | _ -> ());
            a
        in
        (a, if a.Core.Live.switched then Some (render live) else None))
  in
  Option.iter
    (fun s -> Metrics.set_form_strategy t.metrics ~form:entry.key s)
    strategy;
  ans

let entries t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [])
  |> List.sort (fun a b -> String.compare a.key b.key)

let key e = e.key
let form e = e.form

let publish_strategies t =
  List.iter
    (fun e ->
      Metrics.set_form_strategy t.metrics ~form:e.key (strategy_string e))
    (entries t)
