(** Protocol v4: length-prefixed binary framing with request ids.

    Every v4 message — request or response — is one frame:

    {v
      offset  size  field
      0       1     magic      0x84
      1       1     type       request 0x01..0x0C, response 0x81..0x84
      2       4     request id unsigned 32-bit, big-endian
      6       4     length     payload byte count, big-endian
      10      len   payload    UTF-8 text (atoms, reply lines)
    v}

    Request ids are chosen by the client and echoed verbatim in the
    matching response, so many requests can be in flight on one
    connection and responses can arrive out of order. Payloads carry the
    same text the v3 line protocol would — a [QUERY] frame's payload is
    the atom, an [Ok] response's payload is the reply line(s), multi-line
    replies joined with ['\n'] and {e not} [END]-terminated (framing
    already delimits them).

    The magic byte 0x84 is what lets the server tell v4 apart from the
    v2/v3 line dialect by sniffing the first byte of a connection: no
    printable ASCII line starts with a byte >= 0x80. Full wire reference
    in [docs/PROTOCOL.md]. *)

(** The framed-dialect version announced by [HELLO] over v4 (the line
    dialect stays at {!Protocol.version}). *)
val version : int

val magic : char
(** ['\x84'], the first byte of every frame. *)

val header_size : int
(** 10 bytes: magic, type, id, length. *)

val max_payload : int
(** Upper bound on [length] accepted by {!decode} (4 MiB); larger frames
    are rejected as [Corrupt] so a hostile length field cannot force an
    unbounded buffer. *)

(** Frame types. Requests mirror {!Protocol.request} verbs; responses
    classify the reply like the first token of a v3 reply line would. *)
type kind =
  | Hello       (** 0x01 — payload empty; response [Ok] with banner *)
  | Query       (** 0x02 — payload is the atom *)
  | Trace       (** 0x03 — payload is the atom *)
  | Strategy    (** 0x04 — payload is the atom *)
  | Stats       (** 0x05 — payload empty; response is the STATS text *)
  | Stats_json  (** 0x06 — payload empty; response is the JSON line *)
  | Snapshot    (** 0x07 *)
  | Ping        (** 0x08 — response [Ok] with payload [PONG] *)
  | Help        (** 0x0B — response [Ok] with the command list *)
  | Flight
      (** 0x0C — payload empty; response [Ok] with the flight-recorder
          dump (one JSON line) *)
  | Quit        (** 0x09 — response [Bye], then the server closes *)
  | Shutdown    (** 0x0A — response [Bye], then the server drains *)
  | Ok          (** 0x81 — success; payload is the reply text *)
  | Err         (** 0x82 — payload is [<code> <message>] *)
  | Busy        (** 0x83 — request shed by admission control *)
  | Bye         (** 0x84 — connection closing after this frame *)
  | Unknown of int
      (** any other type byte; requests get an [Err unknown-verb]
          response rather than killing the connection *)

type t = { id : int; kind : kind; payload : string }

val is_request : kind -> bool
val kind_code : kind -> int
val kind_name : kind -> string

val encode : Buffer.t -> t -> unit
(** Appends the frame to the buffer. Raises [Invalid_argument] if the id
    is outside unsigned 32-bit range or the payload exceeds
    {!max_payload}. *)

val encode_string : t -> string

(** Result of scanning a byte range for one frame. *)
type decoded =
  | Frame of t * int
      (** a complete frame and the total bytes it consumed *)
  | Need_more of int
      (** incomplete; the total frame size needed (or {!header_size} if
          the header itself is still partial) *)
  | Corrupt of string
      (** bad magic or an over-limit length — the connection cannot be
          resynchronized and should be closed *)

val decode : Bytes.t -> pos:int -> limit:int -> decoded
(** [decode buf ~pos ~limit] scans [buf.[pos .. limit-1]] for one frame
    starting at [pos]. Never raises on any byte sequence; the payload is
    copied out of [buf] exactly once. *)

val read : in_channel -> t
(** Blocking convenience for clients: read exactly one frame. Raises
    [End_of_file] on EOF at a frame boundary, [Failure] on a corrupt or
    truncated frame. *)
