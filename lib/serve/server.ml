module D = Datalog
open Infgraph

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  state_dir : string option;
  snapshot_interval : float;
  learner : Core.Learner.kind;
  learner_config : Core.Learner.config;
  trace_sample : int;
  cache_mb : int;  (* answer-cache budget; 0 disables caching + memo *)
  metrics_port : int option;  (* /metrics + /healthz HTTP port; 0 = ephemeral *)
  log_level : Obs.Log.level option;  (* None = structured logging off *)
  log_file : string option;  (* None = stderr *)
  slow_query_us : float;  (* 0. = slow-query log off *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 4280;
    workers = 4;
    queue_depth = 64;
    state_dir = None;
    snapshot_interval = 0.0;
    learner = `Pib;
    learner_config = Core.Learner.default_config;
    trace_sample = 0;
    cache_mb = 64;
    metrics_port = None;
    log_level = None;
    log_file = None;
    slow_query_us = 0.0;
  }

type state = {
  cfg : config;
  metrics : Metrics.t;
  registry : Registry.t;
  db : D.Database.t;
  log : Obs.Log.t;
  (* at most one slow-query record per second; the rest are counted *)
  slow_limiter : Obs.Log.Limiter.t;
  (* one-shot "trace the next query" flag: tracing every query just in
     case it turns out slow costs ~15% throughput (E21), so instead a
     slow query detected without a live tracer arms this, and the next
     query runs traced — a consistently slow workload gets its span
     tree into the next admitted record at the cost of one traced query
     per record *)
  trace_next : bool Atomic.t;
  c_slow : Obs.Registry.Counter.t;
  conn_seq : int Atomic.t;  (* connection ids, for log correlation *)
  (* each queued connection carries its enqueue time (so the worker that
     pops it can charge the admission-queue wait) and its id *)
  queue : (Unix.file_descr * float * int) Admission.t;
  cache : Cache.Answers.t option;
  memo : D.Sld.Memo.t option;
  stopping : bool Atomic.t;
  stop_w : Unix.file_descr;  (* self-pipe: wakes the accept loop *)
}

(* Callable from worker threads and from signal handlers, so it must not
   take locks: flip the flag and wake the accept loop, which does the
   actual teardown. *)
let initiate_shutdown st =
  if not (Atomic.exchange st.stopping true) then
    try ignore (Unix.write_substring st.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let send oc lines =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc

let result_string = function
  | None -> "no"
  | Some s when D.Subst.is_empty s -> "yes"
  | Some s -> Format.asprintf "%a" D.Subst.pp s

(* Root a [serve] span covering this query's whole worker-side handling;
   the admission wait the connection already paid is attached as an
   attribute (it happened before the span could exist). *)
let serve_root tracer ~wait_us atom_text =
  let root = Trace.root tracer ~kind:"serve" atom_text in
  Trace.set_attr tracer root "queue_wait_us"
    (Printf.sprintf "%.0f" wait_us);
  root

(* Answer [q] through the registry, tracing if [tracer] is enabled, and
   record the query metrics. Returns the answer and its latency
   (exceptions escape). *)
let answer_traced st ~wait_us ~t0 tracer q =
  let root =
    if Trace.enabled tracer then
      serve_root tracer ~wait_us (D.Atom.to_string q)
    else Trace.dummy
  in
  let ans =
    Registry.answer ~tracer ~parent:root ?cache:st.cache ?memo:st.memo
      st.registry ~db:st.db q
  in
  Trace.finish tracer root;
  let latency_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  Metrics.query st.metrics
    ~form:(Registry.key_of_form (Registry.form_of_query q))
    ~latency_us
    ~answered:(ans.Core.Live.result <> None)
    ~switched:ans.Core.Live.switched;
  if Metrics.trace_sampling st.metrics && Trace.enabled tracer then
    Option.iter
      (fun sp -> Metrics.trace st.metrics (Trace.to_json sp))
      (Trace.root_span tracer);
  (ans, latency_us)

(* Per-query log records: a debug record for every answered query, plus a
   rate-limited warn record — with the query's span tree inlined — for
   queries at or over the slow-query threshold. *)
let log_query st ~conn ~qid ~latency_us ~tracer atom_text
    (ans : Core.Live.answer) =
  if Obs.Log.enabled st.log Obs.Log.Debug then
    Obs.Log.debug st.log "query answered"
      ~fields:
        [
          ("conn", Obs.Log.I conn);
          ("query", Obs.Log.I qid);
          ("q", Obs.Log.S atom_text);
          ("latency_us", Obs.Log.F latency_us);
          ("answered", Obs.Log.B (ans.Core.Live.result <> None));
          ("cached", Obs.Log.B ans.Core.Live.cached);
          ("switched", Obs.Log.B ans.Core.Live.switched);
        ];
  if st.cfg.slow_query_us > 0.0 && latency_us >= st.cfg.slow_query_us then begin
    Obs.Registry.Counter.inc st.c_slow;
    match
      Obs.Log.Limiter.admit st.slow_limiter ~now:(Unix.gettimeofday ())
    with
    | None -> ()
    | Some suppressed ->
      let span =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None ->
          (* no tracer was live for this one — arm a trace for the next
             query so the next admitted record carries a span tree *)
          Atomic.set st.trace_next true;
          "null"
      in
      Obs.Log.warn st.log "slow query"
        ~fields:
          [
            ("conn", Obs.Log.I conn);
            ("query", Obs.Log.I qid);
            ("q", Obs.Log.S atom_text);
            ("latency_us", Obs.Log.F latency_us);
            ("threshold_us", Obs.Log.F st.cfg.slow_query_us);
            ("suppressed", Obs.Log.I suppressed);
            ("reductions", Obs.Log.I ans.Core.Live.stats.D.Sld.reductions);
            ("retrievals", Obs.Log.I ans.Core.Live.stats.D.Sld.retrievals);
            ("span", Obs.Log.J span);
          ]
  end

(* The paper-cost total of the trace's [exec] spans, checked against the
   cost the learner pipeline recorded — the built-in consistency check on
   the cost model (equal unless the tracer has a bug). *)
let exec_cost_of_trace tracer =
  match Trace.root_span tracer with
  | None -> 0.0
  | Some root ->
    List.fold_left
      (fun acc sp -> acc +. Trace.total_cost sp)
      0.0
      (Trace.find_kind root "exec")

let with_query st oc atom_text f =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    send oc [ Protocol.err ~code:`Parse msg ]
  | q -> (
    match f q with
    | exception Build.Not_disjunctive clause ->
      Metrics.error st.metrics;
      send oc
        [
          Protocol.err ~code:`Unsupported
            (Format.asprintf
               "cannot serve this form: rule %a is conjunctive" D.Clause.pp
               clause);
        ]
    | exception Invalid_argument msg | exception Failure msg ->
      Metrics.error st.metrics;
      send oc [ Protocol.err ~code:`Internal msg ]
    | () -> ())

let handle_query st oc ~conn ~qid ~wait_us atom_text =
  let t0 = Unix.gettimeofday () in
  with_query st oc atom_text (fun q ->
      (* Slow-query mode traces only when armed by a previous slow
         detection (see [trace_next]) — never speculatively. *)
      let tracer =
        if
          Metrics.trace_sampling st.metrics
          || st.cfg.slow_query_us > 0.0
             (* plain read first: the flag is almost always false, and a
                CAS per query on a shared line costs real throughput *)
             && Atomic.get st.trace_next
             && Atomic.compare_and_set st.trace_next true false
        then Trace.make ()
        else Trace.null
      in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      send oc
        [
          Protocol.answer_line
            ~result:(result_string ans.Core.Live.result)
            ~reductions:ans.Core.Live.stats.D.Sld.reductions
            ~retrievals:ans.Core.Live.stats.D.Sld.retrievals
            ~cached:ans.Core.Live.cached ~switched:ans.Core.Live.switched;
        ])

let handle_trace st oc ~conn ~qid ~wait_us atom_text =
  let t0 = Unix.gettimeofday () in
  with_query st oc atom_text (fun q ->
      let tracer = Trace.make () in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      let paper_cost = exec_cost_of_trace tracer in
      let monitor_cost = ans.Core.Live.cost in
      let span_json =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None -> "{}"
      in
      let reply =
        Printf.sprintf
          "{\"result\":\"%s\",\"reductions\":%d,\"retrievals\":%d,\
           \"cached\":%b,\"switched\":%b,\"paper_cost\":%.17g,\
           \"monitor_cost\":%.17g,\"consistent\":%b,\"span\":%s}"
          (Trace.json_escape (result_string ans.Core.Live.result))
          ans.Core.Live.stats.D.Sld.reductions
          ans.Core.Live.stats.D.Sld.retrievals ans.Core.Live.cached
          ans.Core.Live.switched paper_cost monitor_cost
          (Float.abs (paper_cost -. monitor_cost) <= 1e-9)
          span_json
      in
      send oc [ Protocol.trace_line reply ])

let handle_strategy st oc atom_text =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    send oc [ Protocol.err ~code:`Parse msg ]
  | q -> (
    match Registry.find_or_create st.registry q with
    | exception Build.Not_disjunctive _ | exception Invalid_argument _ ->
      Metrics.error st.metrics;
      send oc
        [ Protocol.err ~code:`Unsupported "cannot build a learner for this form" ]
    | entry ->
      send oc
        [
          Printf.sprintf "OK %s %s" (Registry.key entry)
            (Registry.strategy_string entry);
        ])

let save_snapshot st =
  match st.cfg.state_dir with
  | None -> None
  | Some dir ->
    let n = Snapshot.save ~dir st.registry in
    Metrics.snapshot_saved st.metrics ~forms:n;
    Obs.Log.debug st.log "snapshot saved" ~fields:[ ("forms", Obs.Log.I n) ];
    Some n

let handle_snapshot st oc =
  match save_snapshot st with
  | None ->
    Metrics.error st.metrics;
    send oc
      [
        Protocol.err ~code:`No_state_dir
          "no state directory configured (--state-dir)";
      ]
  | Some n -> send oc [ Printf.sprintf "OK snapshot saved %d form(s)" n ]
  | exception Sys_error msg | exception Failure msg ->
    Metrics.error st.metrics;
    send oc [ Protocol.err ~code:`Internal msg ]

(* One admitted connection, served to completion by one worker.
   [wait_us] is the admission-queue wait this connection paid before a
   worker picked it up; queries on it report that wait in their spans,
   and log records on it carry [conn] (plus a per-connection query
   counter) for correlation. *)
let serve_conn st ~conn ~wait_us fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let qid = ref 0 in
  let next_qid () =
    incr qid;
    !qid
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line -> (
      match Protocol.parse line with
      | Protocol.Empty -> loop ()
      | Protocol.Hello ->
        send oc
          [
            Protocol.hello_line
              ~learner:
                (Core.Learner.kind_to_string
                   (Registry.learner_kind st.registry));
          ];
        loop ()
      | Protocol.Ping ->
        send oc [ Protocol.pong ];
        loop ()
      | Protocol.Help ->
        send oc (Protocol.help_lines @ [ Protocol.terminator ]);
        loop ()
      | Protocol.Stats ->
        send oc (Metrics.render_text st.metrics @ [ Protocol.terminator ]);
        loop ()
      | Protocol.Stats_json ->
        send oc [ Metrics.render_json st.metrics ];
        loop ()
      | Protocol.Query atom ->
        handle_query st oc ~conn ~qid:(next_qid ()) ~wait_us atom;
        loop ()
      | Protocol.Trace atom ->
        handle_trace st oc ~conn ~qid:(next_qid ()) ~wait_us atom;
        loop ()
      | Protocol.Strategy atom ->
        handle_strategy st oc atom;
        loop ()
      | Protocol.Snapshot ->
        handle_snapshot st oc;
        loop ()
      | Protocol.Quit -> send oc [ Protocol.bye ]
      | Protocol.Shutdown ->
        send oc [ Protocol.bye ];
        initiate_shutdown st
      | Protocol.Malformed msg ->
        Metrics.error st.metrics;
        send oc [ Protocol.err ~code:`Malformed msg ];
        loop ()
      | Protocol.Unknown verb ->
        Metrics.error st.metrics;
        send oc [ Protocol.err ~code:`Unknown_verb verb ];
        loop ())
  in
  (try loop () with Sys_error _ -> ());
  (* flushes and closes [fd]; [ic] shares it and needs no separate close *)
  close_out_noerr oc;
  if Obs.Log.enabled st.log Obs.Log.Debug then
    Obs.Log.debug st.log "connection closed"
      ~fields:[ ("conn", Obs.Log.I conn); ("queries", Obs.Log.I !qid) ]

let worker_loop st ~domain =
  let dh = Metrics.domain_handles st.metrics ~domain in
  let rec go () =
    match Admission.pop st.queue with
    | None -> ()
    | Some (fd, enqueued, conn) ->
      let t0 = Unix.gettimeofday () in
      let wait_us = (t0 -. enqueued) *. 1e6 in
      Metrics.queue_waited st.metrics ~wait_us;
      (* popping shrinks the queue: refresh the depth gauge so it tracks
         both directions, not just enqueues *)
      Metrics.observe_queue_depth st.metrics (Admission.length st.queue);
      (try serve_conn st ~conn ~wait_us fd
       with exn ->
         Obs.Log.error st.log "connection handler crashed"
           ~fields:
             [
               ("conn", Obs.Log.I conn);
               ("exn", Obs.Log.S (Printexc.to_string exn));
             ];
         (try Unix.close fd with _ -> ()));
      Metrics.domain_served dh
        ~busy_us:((Unix.gettimeofday () -. t0) *. 1e6);
      go ()
  in
  go ()

(* The worker pool: one OCaml 5 domain per worker, up to the runtime's
   recommended domain count — beyond that, extra parallelism cannot
   help, so surplus workers run as systhreads *inside* the domains
   (round-robin), preserving the configured I/O concurrency (each
   worker owns one connection at a time) without oversubscribing cores.
   All workers, wherever they live, drain the one shared [Admission]
   queue; its Mutex/Condition pair is domain-safe.

   Returns the spawned domains and the effective domain count. *)
let spawn_workers st =
  let requested = st.cfg.workers in
  let n_domains = Int.min requested (Int.max 1 (Domain.recommended_domain_count ())) in
  if n_domains < requested then
    Obs.Log.info st.log "workers exceed recommended domain count"
      ~fields:
        [
          ("workers", Obs.Log.I requested);
          ("domains", Obs.Log.I n_domains);
          ( "note",
            Obs.Log.S
              "surplus workers run as systhreads inside the worker domains"
          );
        ];
  Metrics.set_domains st.metrics n_domains;
  let share slot =
    (* workers are dealt round-robin: slot s runs worker s, s+D, ... *)
    ((requested - slot - 1) / n_domains) + 1
  in
  let domains =
    List.init n_domains (fun slot ->
        Domain.spawn (fun () ->
            match share slot with
            | 1 -> worker_loop st ~domain:slot
            | k ->
              List.init k (fun _ ->
                  Thread.create (fun () -> worker_loop st ~domain:slot) ())
              |> List.iter Thread.join))
  in
  (domains, n_domains)

let shed fd =
  let line = Protocol.busy ^ "\n" in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop st sock stop_r =
  let rec go () =
    if not (Atomic.get st.stopping) then begin
      (match Unix.select [ sock; stop_r ] [] [] (-1.0) with
      | readable, _, _ when List.mem sock readable -> (
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          let conn = Atomic.fetch_and_add st.conn_seq 1 in
          if
            Admission.try_push st.queue (fd, Unix.gettimeofday (), conn)
          then begin
            Metrics.connection st.metrics;
            Metrics.observe_queue_depth st.metrics
              (Admission.length st.queue);
            if Obs.Log.enabled st.log Obs.Log.Debug then
              Obs.Log.debug st.log "connection admitted"
                ~fields:
                  [
                    ("conn", Obs.Log.I conn);
                    ( "queue_depth",
                      Obs.Log.I (Admission.length st.queue) );
                  ]
          end
          else begin
            Metrics.busy st.metrics;
            shed fd;
            Obs.Log.warn st.log "connection shed: queue full"
              ~fields:
                [
                  ("conn", Obs.Log.I conn);
                  ("queue_depth", Obs.Log.I st.cfg.queue_depth);
                ]
          end)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* Sleep the full interval in one timed wait on the shutdown self-pipe
   (the stdlib has no timed [Condition] wait; a [select] with a timeout
   on [stop_r] has the same semantics — it returns early the moment
   [initiate_shutdown] writes its wake-up byte, which is never drained).
   An idle daemon therefore wakes once per interval instead of 5×/s,
   and drain never waits out a residual sleep. *)
let snapshot_loop st stop_r =
  let interval = st.cfg.snapshot_interval in
  let rec go deadline =
    if not (Atomic.get st.stopping) then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0.0 then begin
        (match Unix.select [ stop_r ] [] [] remaining with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go deadline
      end
      else begin
        (try ignore (save_snapshot st) with _ -> ());
        go (Unix.gettimeofday () +. interval)
      end
    end
  in
  go (Unix.gettimeofday () +. interval)

let run ?(handle_signals = false) ?(on_listen = fun _ -> ())
    ?(on_metrics_listen = fun _ -> ()) cfg ~rulebase ~db =
  if cfg.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Server.run: queue_depth must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let log =
    match cfg.log_level with
    | None -> Obs.Log.null
    | Some level -> (
      match cfg.log_file with
      | Some path -> Obs.Log.open_file ~level path
      | None -> Obs.Log.to_channel ~level stderr)
  in
  if cfg.log_level <> None then Obs.Log.install_logs_reporter log;
  let metrics = Metrics.create ~trace_capacity:cfg.trace_sample () in
  let registry =
    Registry.create ~learner:cfg.learner ~config:cfg.learner_config ~rulebase
      metrics
  in
  (match cfg.state_dir with
  | Some dir ->
    let n = Snapshot.load ~dir registry in
    if n > 0 then begin
      Metrics.forms_loaded metrics n;
      Registry.publish_strategies registry;
      Obs.Log.info log "strategies restored from snapshots"
        ~fields:[ ("forms", Obs.Log.I n) ]
    end
  | None -> ());
  let stop_r, stop_w = Unix.pipe () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let cache =
    if cfg.cache_mb > 0 then
      Some (Cache.Answers.create ~capacity_bytes:(cfg.cache_mb * 1024 * 1024) ())
    else None
  in
  let memo = if cfg.cache_mb > 0 then Some (D.Sld.Memo.create ()) else None in
  let c_slow =
    Obs.Registry.Counter.solo
      (Obs.Registry.Counter.v (Metrics.registry metrics)
         ~help:"Queries at or over the slow-query threshold"
         "strategem_slow_queries_total")
  in
  let st =
    {
      cfg;
      metrics;
      registry;
      db;
      log;
      slow_limiter = Obs.Log.Limiter.create ~min_interval_s:1.0;
      trace_next = Atomic.make false;
      c_slow;
      conn_seq = Atomic.make 1;
      queue = Admission.create ~depth:cfg.queue_depth;
      cache;
      memo;
      stopping = Atomic.make false;
      stop_w;
    }
  in
  (* A paged (or copy-of-paged) database exposes its store counters;
     an in-memory one reports no store block at all. *)
  (match D.Database.store_stats st.db with
  | Some _ ->
    Metrics.set_store_provider metrics (fun () ->
        match D.Database.store_stats st.db with
        | Some ss -> ss
        | None -> assert false)
  | None -> ());
  Metrics.set_cache_provider metrics (fun () ->
      match st.cache with
      | None -> Metrics.no_cache_stats
      | Some c ->
        let a = Cache.Answers.counters c in
        let m =
          match st.memo with
          | Some m -> D.Sld.Memo.counters m
          | None ->
            D.Sld.Memo.{ hits = 0; misses = 0; invalidations = 0; entries = 0 }
        in
        {
          Metrics.enabled = true;
          hits = a.Cache.Answers.hits;
          misses = a.Cache.Answers.misses;
          evictions = a.Cache.Answers.evictions;
          invalidations = a.Cache.Answers.invalidations;
          entries = a.Cache.Answers.entries;
          bytes = a.Cache.Answers.bytes;
          capacity_bytes = a.Cache.Answers.capacity_bytes;
          memo_hits = m.D.Sld.Memo.hits;
          memo_misses = m.D.Sld.Memo.misses;
          memo_invalidations = m.D.Sld.Memo.invalidations;
          memo_entries = m.D.Sld.Memo.entries;
        });
  (* The metrics responder is created inside the protected body (after
     the main socket binds, so a busy serve port can't leak it) but must
     be torn down on any exit path, hence the ref. *)
  let http = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun h -> try Obs.Http.stop h with _ -> ()) !http;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ sock; stop_r; stop_w ];
      Obs.Log.close log)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen sock 64;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      if handle_signals then
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> initiate_shutdown st))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
      (match cfg.metrics_port with
      | None -> ()
      | Some mp ->
        let handler ~meth:_ ~path =
          match path with
          | "/metrics" ->
            Some
              {
                Obs.Http.status = 200;
                content_type = "text/plain; version=0.0.4; charset=utf-8";
                body = Metrics.render_prometheus metrics;
              }
          | "/healthz" ->
            Some
              (if Atomic.get st.stopping then Obs.Http.text 503 "draining\n"
               else Obs.Http.text 200 "ready\n")
          | _ -> None
        in
        let h = Obs.Http.start ~host:cfg.host ~port:mp ~handler () in
        http := Some h;
        on_metrics_listen (Obs.Http.port h));
      let workers, n_domains = spawn_workers st in
      let snapshotter =
        if cfg.snapshot_interval > 0.0 && cfg.state_dir <> None then
          Some (Thread.create (fun () -> snapshot_loop st stop_r) ())
        else None
      in
      on_listen port;
      Obs.Log.info log "accepting connections"
        ~fields:
          [
            ("host", Obs.Log.S cfg.host);
            ("port", Obs.Log.I port);
            ("workers", Obs.Log.I cfg.workers);
            ("domains", Obs.Log.I n_domains);
            ("queue_depth", Obs.Log.I cfg.queue_depth);
            ( "learner",
              Obs.Log.S (Core.Learner.kind_to_string cfg.learner) );
            ( "metrics_port",
              match !http with
              | Some h -> Obs.Log.I (Obs.Http.port h)
              | None -> Obs.Log.J "null" );
          ];
      accept_loop st sock stop_r;
      (* Shutdown: refuse new connections, serve what is queued, drain.
         The metrics responder stays up through the drain so /healthz
         reports "draining" to probes. *)
      Obs.Log.info log "shutdown initiated: draining"
        ~fields:[ ("queued", Obs.Log.I (Admission.length st.queue)) ];
      Admission.close st.queue;
      List.iter Domain.join workers;
      Option.iter Thread.join snapshotter;
      (try ignore (save_snapshot st) with _ -> ());
      Obs.Log.info log "server stopped"
        ~fields:
          [
            ("queries_total", Obs.Log.I (Metrics.queries_total metrics));
            ("climbs_total", Obs.Log.I (Metrics.climbs_total metrics));
          ])
