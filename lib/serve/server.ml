module D = Datalog
open Infgraph

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  max_conns : int;
  state_dir : string option;
  snapshot_interval : float;
  learner : Core.Learner.kind;
  learner_config : Core.Learner.config;
  trace_sample : int;
  cache_mb : int;  (* answer-cache budget; 0 disables caching + memo *)
  metrics_port : int option;  (* /metrics + /healthz HTTP port; 0 = ephemeral *)
  log_level : Obs.Log.level option;  (* None = structured logging off *)
  log_file : string option;  (* None = stderr *)
  slow_query_us : float;  (* 0. = slow-query log off *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 4280;
    workers = 4;
    queue_depth = 64;
    max_conns = 10_000;
    state_dir = None;
    snapshot_interval = 0.0;
    learner = `Pib;
    learner_config = Core.Learner.default_config;
    trace_sample = 0;
    cache_mb = 64;
    metrics_port = None;
    log_level = None;
    log_file = None;
    slow_query_us = 0.0;
  }

(* A worker's verdict on one request. [R_lines (lines, multi)] renders as
   the lines (END-terminated when [multi]) on a line connection and as
   one [Ok] frame with the lines joined by '\n' on a v4 connection. *)
type reply =
  | R_lines of string list * bool
  | R_err of Protocol.err_code * string
  | R_busy
  | R_bye
  | R_none  (* nothing on the wire (never produced for v4 requests) *)

type job = {
  conn : Conn.t;
  rid : int;  (* v4: the client's frame id; lines: a per-conn sequence *)
  framed : bool;  (* captured at dispatch — upgrades don't retitle jobs *)
  req : Protocol.request;
  enqueued : float;
}

type state = {
  cfg : config;
  metrics : Metrics.t;
  registry : Registry.t;
  db : D.Database.t;
  log : Obs.Log.t;
  (* at most one slow-query record per second; the rest are counted *)
  slow_limiter : Obs.Log.Limiter.t;
  (* one-shot "trace the next query" flag: tracing every query just in
     case it turns out slow costs ~15% throughput (E21), so instead a
     slow query detected without a live tracer arms this, and the next
     query runs traced — a consistently slow workload gets its span
     tree into the next admitted record at the cost of one traced query
     per record *)
  trace_next : bool Atomic.t;
  c_slow : Obs.Registry.Counter.t;
  conn_seq : int Atomic.t;  (* connection ids, for log correlation *)
  queue : job Admission.t;
  cache : Cache.Answers.t option;
  memo : D.Sld.Memo.t option;
  stopping : bool Atomic.t;
  stop_w : Unix.file_descr;  (* self-pipe: wakes the snapshot loop *)
  loop : Eventloop.t;
  (* loop-thread state: every open connection, by connection id *)
  conns : (int, Conn.t) Hashtbl.t;
  (* worker → loop handoff: connections with a freshly enqueued response
     (or other state change) the loop should service *)
  attention : Conn.t list ref;
  attn_lock : Mutex.t;
  (* requests dispatched whose response is not yet enqueued; the drain
     condition and the pipeline-depth gauge *)
  inflight_total : int Atomic.t;
}

(* Callable from worker threads and from signal handlers, so it must not
   take locks beyond the wake pipe: flip the flag and wake both loops
   (event loop and snapshotter); the event loop does the teardown. *)
let initiate_shutdown st =
  if not (Atomic.exchange st.stopping true) then begin
    (try ignore (Unix.write_substring st.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    Eventloop.wake st.loop
  end

let learner_string st =
  Core.Learner.kind_to_string (Registry.learner_kind st.registry)

let result_string = function
  | None -> "no"
  | Some s when D.Subst.is_empty s -> "yes"
  | Some s -> Format.asprintf "%a" D.Subst.pp s

(* --- response encoding --- *)

let encode_reply ~framed ~rid reply =
  if framed then
    let kind, payload =
      match reply with
      | R_lines (lines, _) -> (Frame.Ok, String.concat "\n" lines)
      | R_err (code, msg) ->
        (Frame.Err, Protocol.err_code_to_string code ^ " " ^ msg)
      | R_busy -> (Frame.Busy, "")
      | R_bye -> (Frame.Bye, "")
      | R_none -> assert false
    in
    Frame.encode_string { Frame.id = rid; kind; payload }
  else
    match reply with
    | R_lines (lines, multi) ->
      let b = Buffer.create 64 in
      List.iter
        (fun l ->
          Buffer.add_string b l;
          Buffer.add_char b '\n')
        lines;
      if multi then (
        Buffer.add_string b Protocol.terminator;
        Buffer.add_char b '\n');
      Buffer.contents b
    | R_err (code, msg) -> Protocol.err ~code msg ^ "\n"
    | R_busy -> Protocol.busy ^ "\n"
    | R_bye -> Protocol.bye ^ "\n"
    | R_none -> assert false

let request_attention st c =
  Mutex.lock st.attn_lock;
  st.attention := c :: !(st.attention);
  Mutex.unlock st.attn_lock;
  Eventloop.wake st.loop

(* Enqueue the encoded response on the job's connection and hand the
   connection back to the loop. Called from worker domains and (for
   inline BUSY) from the loop itself. *)
let respond st job reply =
  (match reply with
  | R_none -> ()
  | _ -> Conn.send job.conn (encode_reply ~framed:job.framed ~rid:job.rid reply));
  (match reply with
  | R_bye -> Conn.set_closing job.conn
  | R_busy when not job.framed ->
    (* line dialect has no id to tie BUSY to a request, so it keeps the
       v1..v3 semantics: BUSY then close *)
    Conn.set_closing job.conn
  | _ -> ());
  Conn.decr_inflight job.conn;
  let now = Atomic.fetch_and_add st.inflight_total (-1) - 1 in
  Metrics.set_pipeline_depth st.metrics now;
  request_attention st job.conn

(* --- request handlers (worker side, pure of socket I/O) --- *)

(* Root a [serve] span covering this query's whole worker-side handling;
   the admission wait the request already paid is attached as an
   attribute (it happened before the span could exist). *)
let serve_root tracer ~wait_us atom_text =
  let root = Trace.root tracer ~kind:"serve" atom_text in
  Trace.set_attr tracer root "queue_wait_us"
    (Printf.sprintf "%.0f" wait_us);
  root

(* Answer [q] through the registry, tracing if [tracer] is enabled, and
   record the query metrics. Returns the answer and its latency
   (exceptions escape). *)
let answer_traced st ~wait_us ~t0 tracer q =
  let root =
    if Trace.enabled tracer then
      serve_root tracer ~wait_us (D.Atom.to_string q)
    else Trace.dummy
  in
  let ans =
    Registry.answer ~tracer ~parent:root ?cache:st.cache ?memo:st.memo
      st.registry ~db:st.db q
  in
  Trace.finish tracer root;
  let latency_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  Metrics.query st.metrics
    ~form:(Registry.key_of_form (Registry.form_of_query q))
    ~latency_us
    ~answered:(ans.Core.Live.result <> None)
    ~switched:ans.Core.Live.switched;
  if Metrics.trace_sampling st.metrics && Trace.enabled tracer then
    Option.iter
      (fun sp -> Metrics.trace st.metrics (Trace.to_json sp))
      (Trace.root_span tracer);
  (ans, latency_us)

(* Per-query log records: a debug record for every answered query, plus a
   rate-limited warn record — with the query's span tree inlined — for
   queries at or over the slow-query threshold. *)
let log_query st ~conn ~qid ~latency_us ~tracer atom_text
    (ans : Core.Live.answer) =
  if Obs.Log.enabled st.log Obs.Log.Debug then
    Obs.Log.debug st.log "query answered"
      ~fields:
        [
          ("conn", Obs.Log.I conn);
          ("query", Obs.Log.I qid);
          ("q", Obs.Log.S atom_text);
          ("latency_us", Obs.Log.F latency_us);
          ("answered", Obs.Log.B (ans.Core.Live.result <> None));
          ("cached", Obs.Log.B ans.Core.Live.cached);
          ("switched", Obs.Log.B ans.Core.Live.switched);
        ];
  if st.cfg.slow_query_us > 0.0 && latency_us >= st.cfg.slow_query_us then begin
    Obs.Registry.Counter.inc st.c_slow;
    match
      Obs.Log.Limiter.admit st.slow_limiter ~now:(Unix.gettimeofday ())
    with
    | None -> ()
    | Some suppressed ->
      let span =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None ->
          (* no tracer was live for this one — arm a trace for the next
             query so the next admitted record carries a span tree *)
          Atomic.set st.trace_next true;
          "null"
      in
      Obs.Log.warn st.log "slow query"
        ~fields:
          [
            ("conn", Obs.Log.I conn);
            ("query", Obs.Log.I qid);
            ("q", Obs.Log.S atom_text);
            ("latency_us", Obs.Log.F latency_us);
            ("threshold_us", Obs.Log.F st.cfg.slow_query_us);
            ("suppressed", Obs.Log.I suppressed);
            ("reductions", Obs.Log.I ans.Core.Live.stats.D.Sld.reductions);
            ("retrievals", Obs.Log.I ans.Core.Live.stats.D.Sld.retrievals);
            ("span", Obs.Log.J span);
          ]
  end

(* The paper-cost total of the trace's [exec] spans, checked against the
   cost the learner pipeline recorded — the built-in consistency check on
   the cost model (equal unless the tracer has a bug). *)
let exec_cost_of_trace tracer =
  match Trace.root_span tracer with
  | None -> 0.0
  | Some root ->
    List.fold_left
      (fun acc sp -> acc +. Trace.total_cost sp)
      0.0
      (Trace.find_kind root "exec")

let with_query st atom_text f =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    R_err (`Parse, msg)
  | q -> (
    match f q with
    | exception Build.Not_disjunctive clause ->
      Metrics.error st.metrics;
      R_err
        ( `Unsupported,
          Format.asprintf "cannot serve this form: rule %a is conjunctive"
            D.Clause.pp clause )
    | exception Invalid_argument msg | exception Failure msg ->
      Metrics.error st.metrics;
      R_err (`Internal, msg)
    | reply -> reply)

let handle_query st ~conn ~qid ~wait_us ~t0 atom_text =
  with_query st atom_text (fun q ->
      (* Slow-query mode traces only when armed by a previous slow
         detection (see [trace_next]) — never speculatively. *)
      let tracer =
        if
          Metrics.trace_sampling st.metrics
          || st.cfg.slow_query_us > 0.0
             (* plain read first: the flag is almost always false, and a
                CAS per query on a shared line costs real throughput *)
             && Atomic.get st.trace_next
             && Atomic.compare_and_set st.trace_next true false
        then Trace.make ()
        else Trace.null
      in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      R_lines
        ( [
            Protocol.answer_line
              ~result:(result_string ans.Core.Live.result)
              ~reductions:ans.Core.Live.stats.D.Sld.reductions
              ~retrievals:ans.Core.Live.stats.D.Sld.retrievals
              ~cached:ans.Core.Live.cached ~switched:ans.Core.Live.switched;
          ],
          false ))

let handle_trace st ~conn ~qid ~wait_us ~t0 atom_text =
  with_query st atom_text (fun q ->
      let tracer = Trace.make () in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      let paper_cost = exec_cost_of_trace tracer in
      let monitor_cost = ans.Core.Live.cost in
      let span_json =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None -> "{}"
      in
      let reply =
        Printf.sprintf
          "{\"result\":\"%s\",\"reductions\":%d,\"retrievals\":%d,\
           \"cached\":%b,\"switched\":%b,\"paper_cost\":%.17g,\
           \"monitor_cost\":%.17g,\"consistent\":%b,\"span\":%s}"
          (Trace.json_escape (result_string ans.Core.Live.result))
          ans.Core.Live.stats.D.Sld.reductions
          ans.Core.Live.stats.D.Sld.retrievals ans.Core.Live.cached
          ans.Core.Live.switched paper_cost monitor_cost
          (Float.abs (paper_cost -. monitor_cost) <= 1e-9)
          span_json
      in
      R_lines ([ Protocol.trace_line reply ], false))

let handle_strategy st atom_text =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    R_err (`Parse, msg)
  | q -> (
    match Registry.find_or_create st.registry q with
    | exception Build.Not_disjunctive _ | exception Invalid_argument _ ->
      Metrics.error st.metrics;
      R_err (`Unsupported, "cannot build a learner for this form")
    | entry ->
      R_lines
        ( [
            Printf.sprintf "OK %s %s" (Registry.key entry)
              (Registry.strategy_string entry);
          ],
          false ))

let save_snapshot st =
  match st.cfg.state_dir with
  | None -> None
  | Some dir ->
    let n = Snapshot.save ~dir st.registry in
    Metrics.snapshot_saved st.metrics ~forms:n;
    Obs.Log.debug st.log "snapshot saved" ~fields:[ ("forms", Obs.Log.I n) ];
    Some n

let handle_snapshot st =
  match save_snapshot st with
  | None ->
    Metrics.error st.metrics;
    R_err (`No_state_dir, "no state directory configured (--state-dir)")
  | Some n -> R_lines ([ Printf.sprintf "OK snapshot saved %d form(s)" n ], false)
  | exception Sys_error msg | exception Failure msg ->
    Metrics.error st.metrics;
    R_err (`Internal, msg)

let process st ~wait_us ~t0 job =
  match job.req with
  (* Empty is never dispatched; Hello_v4 is answered inline by the loop *)
  | Protocol.Empty | Protocol.Hello_v4 -> R_none
  | Protocol.Hello ->
    let version =
      if job.framed then Frame.version else Protocol.version
    in
    R_lines ([ Protocol.hello_line ~version ~learner:(learner_string st) () ], false)
  | Protocol.Ping -> R_lines ([ Protocol.pong ], false)
  | Protocol.Help -> R_lines (Protocol.help_lines, true)
  | Protocol.Stats -> R_lines (Metrics.render_text st.metrics, true)
  | Protocol.Stats_json -> R_lines ([ Metrics.render_json st.metrics ], false)
  | Protocol.Query atom ->
    handle_query st ~conn:(Conn.id job.conn) ~qid:job.rid ~wait_us ~t0 atom
  | Protocol.Trace atom ->
    handle_trace st ~conn:(Conn.id job.conn) ~qid:job.rid ~wait_us ~t0 atom
  | Protocol.Strategy atom -> handle_strategy st atom
  | Protocol.Snapshot -> handle_snapshot st
  | Protocol.Quit -> R_bye
  | Protocol.Shutdown -> R_bye
  | Protocol.Malformed msg ->
    Metrics.error st.metrics;
    R_err (`Malformed, msg)
  | Protocol.Unknown verb ->
    Metrics.error st.metrics;
    R_err (`Unknown_verb, verb)

(* --- worker pool --- *)

let worker_loop st ~domain =
  let dh = Metrics.domain_handles st.metrics ~domain in
  let rec go () =
    match Admission.pop st.queue with
    | None -> ()
    | Some job ->
      let t0 = Unix.gettimeofday () in
      let wait_us = (t0 -. job.enqueued) *. 1e6 in
      Metrics.queue_waited st.metrics ~wait_us;
      (* popping shrinks the queue: refresh the depth gauge so it tracks
         both directions, not just enqueues *)
      Metrics.observe_queue_depth st.metrics (Admission.length st.queue);
      let reply =
        try process st ~wait_us ~t0 job
        with exn ->
          Metrics.error st.metrics;
          Obs.Log.error st.log "request handler crashed"
            ~fields:
              [
                ("conn", Obs.Log.I (Conn.id job.conn));
                ("exn", Obs.Log.S (Printexc.to_string exn));
              ];
          R_err (`Internal, Printexc.to_string exn)
      in
      respond st job reply;
      if job.req = Protocol.Shutdown then initiate_shutdown st;
      Metrics.domain_served dh
        ~busy_us:((Unix.gettimeofday () -. t0) *. 1e6);
      go ()
  in
  go ()

(* The worker pool: one OCaml 5 domain per worker, up to the runtime's
   recommended domain count — beyond that, extra parallelism cannot
   help, so surplus workers run as systhreads *inside* the domains
   (round-robin), preserving the configured request concurrency without
   oversubscribing cores. All workers, wherever they live, drain the one
   shared [Admission] queue of requests; its Mutex/Condition pair is
   domain-safe.

   Returns the spawned domains and the effective domain count. *)
let spawn_workers st =
  let requested = st.cfg.workers in
  let n_domains = Int.min requested (Int.max 1 (Domain.recommended_domain_count ())) in
  if n_domains < requested then
    Obs.Log.info st.log "workers exceed recommended domain count"
      ~fields:
        [
          ("workers", Obs.Log.I requested);
          ("domains", Obs.Log.I n_domains);
          ( "note",
            Obs.Log.S
              "surplus workers run as systhreads inside the worker domains"
          );
        ];
  Metrics.set_domains st.metrics n_domains;
  let share slot =
    (* workers are dealt round-robin: slot s runs worker s, s+D, ... *)
    ((requested - slot - 1) / n_domains) + 1
  in
  let domains =
    List.init n_domains (fun slot ->
        Domain.spawn (fun () ->
            match share slot with
            | 1 -> worker_loop st ~domain:slot
            | k ->
              List.init k (fun _ ->
                  Thread.create (fun () -> worker_loop st ~domain:slot) ())
              |> List.iter Thread.join))
  in
  (domains, n_domains)

(* --- reactor (loop thread) --- *)

let request_of_frame (f : Frame.t) =
  let no_arg req =
    if f.Frame.payload = "" then req
    else Protocol.Malformed (Frame.kind_name f.Frame.kind ^ " takes no argument")
  in
  let atom mk =
    if f.Frame.payload = "" then
      Protocol.Malformed (Frame.kind_name f.Frame.kind ^ " needs an atom")
    else mk f.Frame.payload
  in
  match f.Frame.kind with
  | Frame.Hello -> no_arg Protocol.Hello
  | Frame.Query -> atom (fun a -> Protocol.Query a)
  | Frame.Trace -> atom (fun a -> Protocol.Trace a)
  | Frame.Strategy -> atom (fun a -> Protocol.Strategy a)
  | Frame.Stats -> no_arg Protocol.Stats
  | Frame.Stats_json -> no_arg Protocol.Stats_json
  | Frame.Snapshot -> no_arg Protocol.Snapshot
  | Frame.Ping -> no_arg Protocol.Ping
  | Frame.Help -> no_arg Protocol.Help
  | Frame.Quit -> no_arg Protocol.Quit
  | Frame.Shutdown -> no_arg Protocol.Shutdown
  | Frame.Ok | Frame.Err | Frame.Busy | Frame.Bye ->
    Protocol.Malformed
      ("unexpected response frame " ^ Frame.kind_name f.Frame.kind)
  | Frame.Unknown c -> Protocol.Unknown (Printf.sprintf "0x%02X" c)

(* Hand one request to the worker pool; a full queue sheds it with BUSY
   right here on the loop thread. *)
let dispatch st c ~framed ~rid req =
  Conn.incr_inflight c;
  let d = Atomic.fetch_and_add st.inflight_total 1 + 1 in
  Metrics.set_pipeline_depth st.metrics d;
  let job = { conn = c; rid; framed; req; enqueued = Unix.gettimeofday () } in
  if Admission.try_push st.queue job then
    Metrics.observe_queue_depth st.metrics (Admission.length st.queue)
  else begin
    Metrics.busy st.metrics;
    if Obs.Log.enabled st.log Obs.Log.Debug then
      Obs.Log.debug st.log "request shed: queue full"
        ~fields:
          [
            ("conn", Obs.Log.I (Conn.id c));
            ("queue_depth", Obs.Log.I st.cfg.queue_depth);
          ];
    respond st job R_busy
  end

let on_incoming st c inc =
  match inc with
  | Conn.Line_req Protocol.Empty -> ()  (* blank lines never dispatch *)
  | Conn.Line_req req -> Conn.push_pending c req
  | Conn.Upgrade ->
    (* acknowledge on the line dialect before any response to frames
       that followed the upgrade in the same buffer *)
    Conn.send c
      (Protocol.hello_line ~version:Frame.version
         ~learner:(learner_string st) ()
      ^ "\n")
  | Conn.Frame_req f ->
    dispatch st c ~framed:true ~rid:f.Frame.id (request_of_frame f)
  | Conn.Junk msg ->
    Metrics.error st.metrics;
    if Conn.framed c then
      Conn.send c
        (Frame.encode_string
           { Frame.id = 0; kind = Frame.Err; payload = "malformed " ^ msg })
    else Conn.send c (Protocol.err ~code:`Malformed msg ^ "\n");
    Conn.set_closing c

let reap st c =
  if Hashtbl.mem st.conns (Conn.id c) then begin
    Hashtbl.remove st.conns (Conn.id c);
    Eventloop.remove st.loop (Conn.fd c);
    Conn.kill c;
    (try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ());
    Metrics.conn_closed st.metrics;
    if Obs.Log.enabled st.log Obs.Log.Debug then
      Obs.Log.debug st.log "connection closed"
        ~fields:
          [
            ("conn", Obs.Log.I (Conn.id c));
            ("pipeline_hwm", Obs.Log.I (Conn.pipeline_hwm c));
          ]
  end

let update_interest st c =
  let read =
    not (Conn.read_closed c)
    && not (Conn.closing c)
    && not (Atomic.get st.stopping)
  in
  Eventloop.modify st.loop (Conn.fd c) ~read ~write:(Conn.has_output c)

(* The per-connection maintenance step, run whenever anything might have
   changed (socket event, worker completion, shutdown): flush pending
   output, keep the line-mode stop-and-wait pipeline fed, close when
   drained. Idempotent. *)
let service st c =
  if Conn.dead c then reap st c
  else begin
    ignore (Conn.flush c);
    if Conn.dead c then reap st c
    else begin
      (if not (Conn.framed c) && not (Conn.closing c) && Conn.inflight c = 0
       then
         match Conn.pop_pending c with
         | Some req -> dispatch st c ~framed:false ~rid:(Conn.next_rid c) req
         | None -> ());
      let idle =
        Conn.inflight c = 0
        && Conn.pending_count c = 0
        && not (Conn.has_output c)
      in
      if
        idle
        && (Conn.closing c || Conn.read_closed c || Atomic.get st.stopping)
      then reap st c
      else update_interest st c
    end
  end

let on_conn_event st c ~readable ~writable:_ =
  (if
     readable && not (Conn.read_closed c) && not (Conn.closing c)
     && not (Conn.dead c)
   then
     match Conn.on_readable c ~emit:(on_incoming st c) with
     | Conn.Continue -> ()
     | Conn.Eof ->
       (* honor a final unterminated line, like the blocking server's
          [input_line] did *)
       Conn.finish_read c ~emit:(on_incoming st c);
       Conn.set_read_closed c
     | Conn.Rerror msg ->
       if Obs.Log.enabled st.log Obs.Log.Debug then
         Obs.Log.debug st.log "connection read error"
           ~fields:
             [
               ("conn", Obs.Log.I (Conn.id c));
               ("error", Obs.Log.S msg);
             ];
       Conn.kill c);
  service st c

let shed fd =
  let line = Protocol.busy ^ "\n" in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let on_accept st sock ~readable ~writable:_ =
  if readable && not (Atomic.get st.stopping) then
    let rec go () =
      match Unix.accept ~cloexec:true sock with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
      | fd, addr ->
        let id = Atomic.fetch_and_add st.conn_seq 1 in
        if Hashtbl.length st.conns >= st.cfg.max_conns then begin
          Metrics.busy st.metrics;
          shed fd;
          Obs.Log.warn st.log "connection shed: at max-conns"
            ~fields:
              [
                ("conn", Obs.Log.I id);
                ("max_conns", Obs.Log.I st.cfg.max_conns);
              ]
        end
        else begin
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let c = Conn.create ~id ~peer:(string_of_sockaddr addr) fd in
          Hashtbl.replace st.conns id c;
          Metrics.connection st.metrics;
          Metrics.conn_opened st.metrics;
          Eventloop.add st.loop fd ~read:true ~write:false
            (fun ~readable ~writable ->
              on_conn_event st c ~readable ~writable);
          if Obs.Log.enabled st.log Obs.Log.Debug then
            Obs.Log.debug st.log "connection accepted"
              ~fields:
                [
                  ("conn", Obs.Log.I id);
                  ("peer", Obs.Log.S (Conn.peer c));
                  ("conns_open", Obs.Log.I (Hashtbl.length st.conns));
                ]
        end;
        go ()
    in
    go ()

(* Sleep the full interval in one timed wait on the shutdown self-pipe
   (the stdlib has no timed [Condition] wait; a [select] with a timeout
   on [stop_r] has the same semantics — it returns early the moment
   [initiate_shutdown] writes its wake-up byte, which is never drained).
   An idle daemon therefore wakes once per interval instead of 5×/s,
   and drain never waits out a residual sleep. *)
let snapshot_loop st stop_r =
  let interval = st.cfg.snapshot_interval in
  let rec go deadline =
    if not (Atomic.get st.stopping) then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0.0 then begin
        (match Unix.select [ stop_r ] [] [] remaining with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go deadline
      end
      else begin
        (try ignore (save_snapshot st) with _ -> ());
        go (Unix.gettimeofday () +. interval)
      end
    end
  in
  go (Unix.gettimeofday () +. interval)

let run ?(handle_signals = false) ?(on_listen = fun _ -> ())
    ?(on_metrics_listen = fun _ -> ()) cfg ~rulebase ~db =
  if cfg.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Server.run: queue_depth must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Server.run: max_conns must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let log =
    match cfg.log_level with
    | None -> Obs.Log.null
    | Some level -> (
      match cfg.log_file with
      | Some path -> Obs.Log.open_file ~level path
      | None -> Obs.Log.to_channel ~level stderr)
  in
  if cfg.log_level <> None then Obs.Log.install_logs_reporter log;
  let metrics = Metrics.create ~trace_capacity:cfg.trace_sample () in
  let registry =
    Registry.create ~learner:cfg.learner ~config:cfg.learner_config ~rulebase
      metrics
  in
  (match cfg.state_dir with
  | Some dir ->
    let n = Snapshot.load ~dir registry in
    if n > 0 then begin
      Metrics.forms_loaded metrics n;
      Registry.publish_strategies registry;
      Obs.Log.info log "strategies restored from snapshots"
        ~fields:[ ("forms", Obs.Log.I n) ]
    end
  | None -> ());
  let stop_r, stop_w = Unix.pipe () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let loop = Eventloop.create () in
  Metrics.set_backend metrics (Eventloop.backend loop);
  let cache =
    if cfg.cache_mb > 0 then
      Some (Cache.Answers.create ~capacity_bytes:(cfg.cache_mb * 1024 * 1024) ())
    else None
  in
  let memo = if cfg.cache_mb > 0 then Some (D.Sld.Memo.create ()) else None in
  let c_slow =
    Obs.Registry.Counter.solo
      (Obs.Registry.Counter.v (Metrics.registry metrics)
         ~help:"Queries at or over the slow-query threshold"
         "strategem_slow_queries_total")
  in
  let st =
    {
      cfg;
      metrics;
      registry;
      db;
      log;
      slow_limiter = Obs.Log.Limiter.create ~min_interval_s:1.0;
      trace_next = Atomic.make false;
      c_slow;
      conn_seq = Atomic.make 1;
      queue = Admission.create ~depth:cfg.queue_depth;
      cache;
      memo;
      stopping = Atomic.make false;
      stop_w;
      loop;
      conns = Hashtbl.create 64;
      attention = ref [];
      attn_lock = Mutex.create ();
      inflight_total = Atomic.make 0;
    }
  in
  (* A paged (or copy-of-paged) database exposes its store counters;
     an in-memory one reports no store block at all. *)
  (match D.Database.store_stats st.db with
  | Some _ ->
    Metrics.set_store_provider metrics (fun () ->
        match D.Database.store_stats st.db with
        | Some ss -> ss
        | None -> assert false)
  | None -> ());
  Metrics.set_cache_provider metrics (fun () ->
      match st.cache with
      | None -> Metrics.no_cache_stats
      | Some c ->
        let a = Cache.Answers.counters c in
        let m =
          match st.memo with
          | Some m -> D.Sld.Memo.counters m
          | None ->
            D.Sld.Memo.{ hits = 0; misses = 0; invalidations = 0; entries = 0 }
        in
        {
          Metrics.enabled = true;
          hits = a.Cache.Answers.hits;
          misses = a.Cache.Answers.misses;
          evictions = a.Cache.Answers.evictions;
          invalidations = a.Cache.Answers.invalidations;
          entries = a.Cache.Answers.entries;
          bytes = a.Cache.Answers.bytes;
          capacity_bytes = a.Cache.Answers.capacity_bytes;
          memo_hits = m.D.Sld.Memo.hits;
          memo_misses = m.D.Sld.Memo.misses;
          memo_invalidations = m.D.Sld.Memo.invalidations;
          memo_entries = m.D.Sld.Memo.entries;
        });
  (* The metrics responder is created inside the protected body (after
     the main socket binds, so a busy serve port can't leak it) but must
     be torn down on any exit path, hence the ref. *)
  let http = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun h -> try Obs.Http.stop h with _ -> ()) !http;
      Eventloop.close loop;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ sock; stop_r; stop_w ];
      Obs.Log.close log)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen sock 256;
      Unix.set_nonblock sock;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      if handle_signals then
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> initiate_shutdown st))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
      (match cfg.metrics_port with
      | None -> ()
      | Some mp ->
        let handler ~meth:_ ~path =
          match path with
          | "/metrics" ->
            Some
              {
                Obs.Http.status = 200;
                content_type = "text/plain; version=0.0.4; charset=utf-8";
                body = Metrics.render_prometheus metrics;
              }
          | "/healthz" ->
            Some
              (if Atomic.get st.stopping then Obs.Http.text 503 "draining\n"
               else Obs.Http.text 200 "ready\n")
          | _ -> None
        in
        let h = Obs.Http.start ~host:cfg.host ~port:mp ~handler () in
        http := Some h;
        on_metrics_listen (Obs.Http.port h));
      let workers, n_domains = spawn_workers st in
      let snapshotter =
        if cfg.snapshot_interval > 0.0 && cfg.state_dir <> None then
          Some (Thread.create (fun () -> snapshot_loop st stop_r) ())
        else None
      in
      (* Loop plumbing: the listener is one more registered socket, and
         the wake hook drains the worker→loop attention list. On the
         first wake after [stopping] flips, the hook also kicks off the
         drain: close the listener, close the queue (workers finish
         what's dispatched, then exit), and service every connection so
         idle ones close immediately. *)
      Eventloop.add loop sock ~read:true ~write:false
        (fun ~readable ~writable -> on_accept st sock ~readable ~writable);
      let listener_open = ref true in
      let draining = ref false in
      Eventloop.on_wake loop (fun () ->
          let batch =
            Mutex.lock st.attn_lock;
            let b = !(st.attention) in
            st.attention := [];
            Mutex.unlock st.attn_lock;
            b
          in
          List.iter (service st) batch;
          if Atomic.get st.stopping && not !draining then begin
            draining := true;
            Obs.Log.info log "shutdown initiated: draining"
              ~fields:
                [
                  ("inflight", Obs.Log.I (Atomic.get st.inflight_total));
                  ("conns_open", Obs.Log.I (Hashtbl.length st.conns));
                ];
            if !listener_open then begin
              listener_open := false;
              Eventloop.remove loop sock;
              try Unix.close sock with Unix.Unix_error _ -> ()
            end;
            Admission.close st.queue;
            Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []
            |> List.iter (service st)
          end);
      on_listen port;
      Obs.Log.info log "accepting connections"
        ~fields:
          [
            ("host", Obs.Log.S cfg.host);
            ("port", Obs.Log.I port);
            ("backend", Obs.Log.S (Eventloop.backend loop));
            ("workers", Obs.Log.I cfg.workers);
            ("domains", Obs.Log.I n_domains);
            ("queue_depth", Obs.Log.I cfg.queue_depth);
            ("max_conns", Obs.Log.I cfg.max_conns);
            ( "learner",
              Obs.Log.S (Core.Learner.kind_to_string cfg.learner) );
            ( "metrics_port",
              match !http with
              | Some h -> Obs.Log.I (Obs.Http.port h)
              | None -> Obs.Log.J "null" );
          ];
      Eventloop.run loop ~stop:(fun () ->
          Atomic.get st.stopping
          && Atomic.get st.inflight_total = 0
          && Hashtbl.length st.conns = 0);
      (* Belt and braces: on any exit path make sure the survivors are
         released and the pool drains. The metrics responder stays up
         through the drain so /healthz reports "draining" to probes. *)
      Hashtbl.iter
        (fun _ c ->
          Eventloop.remove loop (Conn.fd c);
          Conn.kill c;
          try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ())
        st.conns;
      Hashtbl.reset st.conns;
      Admission.close st.queue;
      List.iter Domain.join workers;
      Option.iter Thread.join snapshotter;
      (try ignore (save_snapshot st) with _ -> ());
      Obs.Log.info log "server stopped"
        ~fields:
          [
            ("queries_total", Obs.Log.I (Metrics.queries_total metrics));
            ("climbs_total", Obs.Log.I (Metrics.climbs_total metrics));
          ])
