module D = Datalog
open Infgraph

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  max_conns : int;
  state_dir : string option;
  snapshot_interval : float;
  learner : Core.Learner.kind;
  learner_config : Core.Learner.config;
  trace_sample : int;
  cache_mb : int;  (* answer-cache budget; 0 disables caching + memo *)
  subsume : bool;  (* subsumption index + derived hits (needs cache_mb > 0) *)
  metrics_port : int option;  (* /metrics + /healthz HTTP port; 0 = ephemeral *)
  log_level : Obs.Log.level option;  (* None = structured logging off *)
  log_file : string option;  (* None = stderr *)
  slow_query_us : float;  (* 0. = slow-query log off *)
  loops : int;  (* event loops in the reactor fleet; 0 = match domains *)
  max_write_buf : int;  (* per-conn write-buffer cap, bytes; 0 = off *)
  max_write_total : int;  (* global write-buffer cap, bytes; 0 = off *)
  idle_timeout_s : float;  (* close idle connections after; 0. = off *)
  max_conns_per_ip : int;  (* accept-time per-IP cap; 0 = off *)
  lifecycle : bool;  (* per-request lifecycle tracking (spans + stages) *)
  flight_capacity : int;  (* per-loop flight-recorder ring; 0 = off *)
  retain : int;  (* tail-retained trace buffer, per loop; 0 = off *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 4280;
    workers = 4;
    queue_depth = 64;
    max_conns = 10_000;
    state_dir = None;
    snapshot_interval = 0.0;
    learner = `Pib;
    learner_config = Core.Learner.default_config;
    trace_sample = 0;
    cache_mb = 64;
    subsume = true;
    metrics_port = None;
    log_level = None;
    log_file = None;
    slow_query_us = 0.0;
    loops = 0;
    max_write_buf = 64 * 1024 * 1024;
    max_write_total = 0;
    idle_timeout_s = 0.0;
    max_conns_per_ip = 0;
    lifecycle = true;
    flight_capacity = 4096;
    retain = 64;
  }

(* A worker's verdict on one request. [R_lines (lines, multi)] renders as
   the lines (END-terminated when [multi]) on a line connection and as
   one [Ok] frame with the lines joined by '\n' on a v4 connection. *)
type reply =
  | R_lines of string list * bool
  | R_err of Protocol.err_code * string
  | R_busy
  | R_bye
  | R_none  (* nothing on the wire (never produced for v4 requests) *)

type job = {
  conn : Conn.t;
  rid : int;  (* v4: the client's frame id; lines: a per-conn sequence *)
  framed : bool;  (* captured at dispatch — upgrades don't retitle jobs *)
  req : Protocol.request;
  enqueued : float;
  lc : Lifecycle.t option;  (* lifecycle record; None when --no-lifecycle *)
}

(* One event loop of the reactor fleet. Each loop is its own domain
   owning a private {!Eventloop.t} (its own epoll instance and wake
   channel) and a private connection table — no [Conn.t] is ever shared
   between loops, so everything here is either loop-thread-only or one
   of the two explicit handoff queues. *)
type loop_state = {
  lid : int;
  ev : Eventloop.t;
  lh : Metrics.loop_handles;
  (* loop-thread state: every connection this loop owns, by id *)
  conns : (int, Conn.t) Hashtbl.t;
  (* acceptor → loop handoff: freshly accepted sockets
     [(fd, peer, ip, id, accept_ns)]. The loop materializes the [Conn.t]
     and registers the fd itself — {!Eventloop.add} is loop-thread-only. *)
  inc_lock : Mutex.t;
  incoming : (Unix.file_descr * string * string * int * int64) Queue.t;
  (* worker → loop handoff: connections with a freshly enqueued response
     (or other state change) the loop should service *)
  attn_lock : Mutex.t;
  attention : Conn.t list ref;
  (* connections owned (including queued handoffs), read by the acceptor
     for two-choice placement and the max-conns cap *)
  n_conns : int Atomic.t;
  (* requests dispatched from this loop's connections whose response is
     not yet enqueued — the loop's drain condition *)
  inflight : int Atomic.t;
  mutable draining : bool;
  (* loop-thread timestamp, refreshed once per iteration when the idle
     timeout is on — per-event [Conn.touch] never calls gettimeofday *)
  mutable now : float;
  mutable last_sweep : float;
  (* hashed timer wheel for the idle timeout: each slot holds the
     connections whose deadline falls in a second congruent to it.
     Loop-thread-only. Empty (and never touched) when the timeout is
     off. *)
  wheel : Conn.t list array;
  (* the loop's flight recorder — written only by this loop's thread
     (conn events directly; request events at finalize, replayed from
     the lifecycle record's timestamps), snapshotted by anyone *)
  flight : Obs.Flight.t;
  (* worker → loop: finalize handoff. A worker enqueueing a response
     registers [(byte mark, lifecycle record, conn)] here; the loop
     finalizes the record — flight events, stage histograms, retention —
     once the conn's flushed-bytes total reaches the mark (or the conn
     died). *)
  fin_lock : Mutex.t;
  mutable pending_fin : (int * Lifecycle.t * Conn.t) list;
  (* tail-retained traces, newest first; written by the loop at
     finalize, read by FLIGHT / /debug/flight. Inserts keep the
     finalized record and render the span tree lazily at dump time:
     under sustained overload every shed request retains, and an eager
     render per insert was measured at ~30 us — a 2-3x throughput
     collapse on the shed path, paid for entries that are mostly
     evicted unread. *)
  ret_lock : Mutex.t;
  mutable retained : retained_entry list;
  mutable retained_n : int;
}

and retained_entry = {
  re_seq : int;
  re_reason : string;
  re_total_us : float;
  re_lc : Lifecycle.t;  (* immutable once finalized *)
}

type state = {
  cfg : config;
  metrics : Metrics.t;
  registry : Registry.t;
  db : D.Database.t;
  log : Obs.Log.t;
  (* at most one slow-query record per second; the rest are counted *)
  slow_limiter : Obs.Log.Limiter.t;
  (* one-shot "trace the next query" flag: tracing every query just in
     case it turns out slow costs ~15% throughput (E21), so instead a
     slow query detected without a live tracer arms this, and the next
     query runs traced — a consistently slow workload gets its span
     tree into the next admitted record at the cost of one traced query
     per record *)
  trace_next : bool Atomic.t;
  c_slow : Obs.Registry.Counter.t;
  (* global sequence over retained traces, so `strategem tail` can
     dedupe across loops *)
  retained_seq : int Atomic.t;
  (* at most one auto flight dump per second; the rest are counted *)
  flight_limiter : Obs.Log.Limiter.t;
  conn_seq : int Atomic.t;  (* connection ids, for log correlation *)
  (* acceptor-only rotation for power-of-two-choices placement *)
  accept_rr : int Atomic.t;
  queue : job Admission.t;
  cache : Cache.Answers.t option;
  memo : D.Sld.Memo.t option;
  stopping : bool Atomic.t;
  stop_w : Unix.file_descr;  (* self-pipe: wakes acceptor + snapshotter *)
  (* the reactor fleet, one entry per event loop *)
  loops : loop_state array;
  (* write-buffer budget shared by every connection (per-conn + global
     caps; see {!Conn.limits}) *)
  limits : Conn.limits;
  (* accept-time per-IP counts, shared by acceptor (incr) and loops
     (decr at reap) *)
  ip_lock : Mutex.t;
  ip_counts : (string, int) Hashtbl.t;
  (* requests dispatched whose response is not yet enqueued, across all
     loops: the pipeline-depth gauge *)
  inflight_total : int Atomic.t;
}

(* Callable from worker threads and from signal handlers, so it must not
   take locks beyond the wake channels: flip the flag and wake the
   acceptor, the snapshotter, and every event loop; they do their own
   teardown. *)
let initiate_shutdown st =
  if not (Atomic.exchange st.stopping true) then begin
    (try ignore (Unix.write_substring st.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    Array.iter (fun ls -> Eventloop.wake ls.ev) st.loops
  end

let learner_string st =
  Core.Learner.kind_to_string (Registry.learner_kind st.registry)

let result_string = function
  | None -> "no"
  | Some s when D.Subst.is_empty s -> "yes"
  | Some s -> Format.asprintf "%a" D.Subst.pp s

(* The lifecycle record's label: the verb word, plus the atom for the
   query-shaped verbs. *)
let request_label = function
  | Protocol.Query a -> "QUERY " ^ a
  | Protocol.Trace a -> "TRACE " ^ a
  | Protocol.Strategy a -> "STRATEGY " ^ a
  | Protocol.Hello | Protocol.Hello_v4 -> "HELLO"
  | Protocol.Stats -> "STATS"
  | Protocol.Stats_json -> "STATS JSON"
  | Protocol.Snapshot -> "SNAPSHOT"
  | Protocol.Ping -> "PING"
  | Protocol.Help -> "HELP"
  | Protocol.Flight -> "FLIGHT"
  | Protocol.Quit -> "QUIT"
  | Protocol.Shutdown -> "SHUTDOWN"
  | Protocol.Empty -> ""
  | Protocol.Malformed _ -> "(malformed)"
  | Protocol.Unknown v -> v

(* --- response encoding --- *)

let encode_reply ~framed ~rid reply =
  if framed then
    let kind, payload =
      match reply with
      | R_lines (lines, _) -> (Frame.Ok, String.concat "\n" lines)
      | R_err (code, msg) ->
        (Frame.Err, Protocol.err_code_to_string code ^ " " ^ msg)
      | R_busy -> (Frame.Busy, "")
      | R_bye -> (Frame.Bye, "")
      | R_none -> assert false
    in
    Frame.encode_string { Frame.id = rid; kind; payload }
  else
    match reply with
    | R_lines (lines, multi) ->
      let b = Buffer.create 64 in
      List.iter
        (fun l ->
          Buffer.add_string b l;
          Buffer.add_char b '\n')
        lines;
      if multi then (
        Buffer.add_string b Protocol.terminator;
        Buffer.add_char b '\n');
      Buffer.contents b
    | R_err (code, msg) -> Protocol.err ~code msg ^ "\n"
    | R_busy -> Protocol.busy ^ "\n"
    | R_bye -> Protocol.bye ^ "\n"
    | R_none -> assert false

(* Hand [c] back to its owning loop: every connection carries its loop
   id, so a worker completing a request finds the one wake channel to
   write. Push before the inflight decrement — the loop's drain
   predicate must not observe zero in flight with the handoff still
   unpublished. *)
let request_attention st c =
  let ls = st.loops.(Conn.loop c) in
  Mutex.lock ls.attn_lock;
  ls.attention := c :: !(ls.attention);
  Mutex.unlock ls.attn_lock;
  ls

(* Enqueue the encoded response on the job's connection and hand the
   connection back to its owning loop. Called from worker domains and
   (for inline BUSY) from the loop itself. *)
let respond st job reply =
  (match job.lc with
  | Some l ->
    l.Lifecycle.lc_respond_ns <- Lifecycle.now_ns ();
    (match reply with
    | R_err _ -> l.Lifecycle.lc_error <- true
    | R_busy -> l.Lifecycle.lc_shed <- true
    | _ -> ())
  | None -> ());
  let mark =
    match reply with
    | R_none -> Conn.send_mark job.conn ""
    | _ ->
      Conn.send_mark job.conn
        (encode_reply ~framed:job.framed ~rid:job.rid reply)
  in
  (match reply with
  | R_bye -> Conn.set_closing job.conn
  | R_busy when not job.framed ->
    (* line dialect has no id to tie BUSY to a request, so it keeps the
       v1..v3 semantics: BUSY then close *)
    Conn.set_closing job.conn
  | _ -> ());
  Conn.decr_inflight job.conn;
  let ls = request_attention st job.conn in
  (* register the finalize mark before the wake, like the attention push:
     the tick this wake triggers must see it *)
  (match job.lc with
  | Some l ->
    Mutex.lock ls.fin_lock;
    ls.pending_fin <- (mark, l, job.conn) :: ls.pending_fin;
    Mutex.unlock ls.fin_lock
  | None -> ());
  ignore (Atomic.fetch_and_add ls.inflight (-1));
  let now = Atomic.fetch_and_add st.inflight_total (-1) - 1 in
  Metrics.set_pipeline_depth st.metrics now;
  Eventloop.wake ls.ev

(* --- request handlers (worker side, pure of socket I/O) --- *)

(* Root a [serve] span covering this query's whole worker-side handling;
   the admission wait the request already paid is attached as an
   attribute (it happened before the span could exist). *)
let serve_root tracer ~wait_us atom_text =
  let root = Trace.root tracer ~kind:"serve" atom_text in
  Trace.set_attr tracer root "queue_wait_us"
    (Printf.sprintf "%.0f" wait_us);
  root

(* Answer [q] through the registry, tracing if [tracer] is enabled, and
   record the query metrics. Returns the answer and its latency
   (exceptions escape). *)
let answer_traced st ~wait_us ~t0 tracer q =
  let root =
    if Trace.enabled tracer then
      serve_root tracer ~wait_us (D.Atom.to_string q)
    else Trace.dummy
  in
  let ans =
    Registry.answer ~tracer ~parent:root ?cache:st.cache ?memo:st.memo
      st.registry ~db:st.db q
  in
  Trace.finish tracer root;
  (* lifecycle attribution: which backend answered, and — when this
     query ran traced — the exec span tree, grafted under the record's
     worker span at export *)
  (match Lifecycle.current () with
  | Some lc ->
    lc.Lifecycle.lc_backend <-
      (if ans.Core.Live.cached then
         if ans.Core.Live.derived then Lifecycle.B_cache_derived
         else Lifecycle.B_cache
       else Lifecycle.B_sld);
    if Trace.enabled tracer then
      lc.Lifecycle.lc_exec <- Trace.root_span tracer
  | None -> ());
  let latency_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  Metrics.query st.metrics
    ~form:(Registry.key_of_form (Registry.form_of_query q))
    ~latency_us
    ~answered:(ans.Core.Live.result <> None)
    ~switched:ans.Core.Live.switched;
  if Metrics.trace_sampling st.metrics && Trace.enabled tracer then
    Option.iter
      (fun sp -> Metrics.trace st.metrics (Trace.to_json sp))
      (Trace.root_span tracer);
  (ans, latency_us)

(* Per-query log records: a debug record for every answered query, plus a
   rate-limited warn record — with the query's span tree inlined — for
   queries at or over the slow-query threshold. *)
let log_query st ~conn ~qid ~latency_us ~tracer atom_text
    (ans : Core.Live.answer) =
  if Obs.Log.enabled st.log Obs.Log.Debug then
    Obs.Log.debug st.log "query answered"
      ~fields:
        [
          ("conn", Obs.Log.I conn);
          ("query", Obs.Log.I qid);
          ("q", Obs.Log.S atom_text);
          ("latency_us", Obs.Log.F latency_us);
          ("answered", Obs.Log.B (ans.Core.Live.result <> None));
          ("cached", Obs.Log.B ans.Core.Live.cached);
          ("derived", Obs.Log.B ans.Core.Live.derived);
          ("switched", Obs.Log.B ans.Core.Live.switched);
        ];
  if st.cfg.slow_query_us > 0.0 && latency_us >= st.cfg.slow_query_us then begin
    Obs.Registry.Counter.inc st.c_slow;
    match
      Obs.Log.Limiter.admit st.slow_limiter ~now:(Unix.gettimeofday ())
    with
    | None -> ()
    | Some suppressed ->
      let span =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None ->
          (* no tracer was live for this one — arm a trace for the next
             query so the next admitted record carries a span tree *)
          Atomic.set st.trace_next true;
          "null"
      in
      Obs.Log.warn st.log "slow query"
        ~fields:
          [
            ("conn", Obs.Log.I conn);
            ("query", Obs.Log.I qid);
            ("q", Obs.Log.S atom_text);
            ("latency_us", Obs.Log.F latency_us);
            ("threshold_us", Obs.Log.F st.cfg.slow_query_us);
            ("suppressed", Obs.Log.I suppressed);
            ("reductions", Obs.Log.I ans.Core.Live.stats.D.Sld.reductions);
            ("retrievals", Obs.Log.I ans.Core.Live.stats.D.Sld.retrievals);
            ("span", Obs.Log.J span);
          ]
  end

(* The paper-cost total of the trace's [exec] spans, checked against the
   cost the learner pipeline recorded — the built-in consistency check on
   the cost model (equal unless the tracer has a bug). *)
let exec_cost_of_trace tracer =
  match Trace.root_span tracer with
  | None -> 0.0
  | Some root ->
    List.fold_left
      (fun acc sp -> acc +. Trace.total_cost sp)
      0.0
      (Trace.find_kind root "exec")

let with_query st atom_text f =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    R_err (`Parse, msg)
  | q -> (
    match f q with
    | exception Build.Not_disjunctive clause ->
      Metrics.error st.metrics;
      R_err
        ( `Unsupported,
          Format.asprintf "cannot serve this form: rule %a is conjunctive"
            D.Clause.pp clause )
    | exception Invalid_argument msg | exception Failure msg ->
      Metrics.error st.metrics;
      R_err (`Internal, msg)
    | reply -> reply)

let handle_query st ~conn ~qid ~wait_us ~t0 atom_text =
  with_query st atom_text (fun q ->
      (* Slow-query mode traces only when armed by a previous slow
         detection (see [trace_next]) — never speculatively. *)
      let tracer =
        if
          Metrics.trace_sampling st.metrics
          || st.cfg.slow_query_us > 0.0
             (* plain read first: the flag is almost always false, and a
                CAS per query on a shared line costs real throughput *)
             && Atomic.get st.trace_next
             && Atomic.compare_and_set st.trace_next true false
        then Trace.make ()
        else Trace.null
      in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      R_lines
        ( [
            Protocol.answer_line ~derived:ans.Core.Live.derived
              ~result:(result_string ans.Core.Live.result)
              ~reductions:ans.Core.Live.stats.D.Sld.reductions
              ~retrievals:ans.Core.Live.stats.D.Sld.retrievals
              ~cached:ans.Core.Live.cached ~switched:ans.Core.Live.switched
              ();
          ],
          false ))

let handle_trace st ~conn ~qid ~wait_us ~t0 atom_text =
  with_query st atom_text (fun q ->
      let tracer = Trace.make () in
      let ans, latency_us = answer_traced st ~wait_us ~t0 tracer q in
      log_query st ~conn ~qid ~latency_us ~tracer atom_text ans;
      let paper_cost = exec_cost_of_trace tracer in
      let monitor_cost = ans.Core.Live.cost in
      let span_json =
        match Trace.root_span tracer with
        | Some sp -> Trace.to_json sp
        | None -> "{}"
      in
      let reply =
        Printf.sprintf
          "{\"result\":\"%s\",\"reductions\":%d,\"retrievals\":%d,\
           \"cached\":%b,\"derived\":%b,\"switched\":%b,\"paper_cost\":%.17g,\
           \"monitor_cost\":%.17g,\"consistent\":%b,\"span\":%s}"
          (Trace.json_escape (result_string ans.Core.Live.result))
          ans.Core.Live.stats.D.Sld.reductions
          ans.Core.Live.stats.D.Sld.retrievals ans.Core.Live.cached
          ans.Core.Live.derived ans.Core.Live.switched paper_cost monitor_cost
          (Float.abs (paper_cost -. monitor_cost) <= 1e-9)
          span_json
      in
      R_lines ([ Protocol.trace_line reply ], false))

let handle_strategy st atom_text =
  match D.Parser.parse_atom atom_text with
  | exception D.Parser.Parse_error (msg, _) ->
    Metrics.error st.metrics;
    R_err (`Parse, msg)
  | q -> (
    match Registry.find_or_create st.registry q with
    | exception Build.Not_disjunctive _ | exception Invalid_argument _ ->
      Metrics.error st.metrics;
      R_err (`Unsupported, "cannot build a learner for this form")
    | entry ->
      R_lines
        ( [
            Printf.sprintf "OK %s %s" (Registry.key entry)
              (Registry.strategy_string entry);
          ],
          false ))

let save_snapshot st =
  match st.cfg.state_dir with
  | None -> None
  | Some dir ->
    let n = Snapshot.save ~dir st.registry in
    Metrics.snapshot_saved st.metrics ~forms:n;
    Obs.Log.debug st.log "snapshot saved" ~fields:[ ("forms", Obs.Log.I n) ];
    Some n

let handle_snapshot st =
  match save_snapshot st with
  | None ->
    Metrics.error st.metrics;
    R_err (`No_state_dir, "no state directory configured (--state-dir)")
  | Some n -> R_lines ([ Printf.sprintf "OK snapshot saved %d form(s)" n ], false)
  | exception Sys_error msg | exception Failure msg ->
    Metrics.error st.metrics;
    R_err (`Internal, msg)

(* The flight-recorder dump: every loop's ring (merged, time-ordered)
   plus every loop's tail-retained traces, as one JSON object. Safe from
   any thread — ring snapshots validate sequence stamps, the retained
   buffers take their per-loop locks. Served by the FLIGHT verb, by
   GET /debug/flight, and dumped to stderr on SIGQUIT. *)
let flight_json st =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"version\":1,\"loops\":%d,\"flight_capacity\":%d,\"events\":["
       (Array.length st.loops)
       (Obs.Flight.capacity st.loops.(0).flight));
  let events =
    Array.to_list st.loops
    |> List.concat_map (fun ls -> Obs.Flight.snapshot ls.flight)
    |> List.sort (fun a b ->
           Int64.compare a.Obs.Flight.ev_ts_ns b.Obs.Flight.ev_ts_ns)
  in
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Obs.Flight.event_to_json e))
    events;
  Buffer.add_string buf "],\"retained\":[";
  let retained =
    Array.to_list st.loops
    |> List.concat_map (fun ls ->
           Mutex.lock ls.ret_lock;
           let r = ls.retained in
           Mutex.unlock ls.ret_lock;
           List.rev_map (fun e -> (ls.lid, e)) r |> List.rev)
  in
  List.iteri
    (fun i (lid, e) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"loop\":%d,\"conn\":%d,\"rid\":%d,\
            \"reason\":\"%s\",\"total_us\":%.0f,\"span\":%s}"
           e.re_seq lid e.re_lc.Lifecycle.lc_conn e.re_lc.Lifecycle.lc_rid
           e.re_reason e.re_total_us
           (Trace.to_json (Lifecycle.to_span e.re_lc))))
    retained;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let process st ~wait_us ~t0 job =
  match job.req with
  (* Empty is never dispatched; Hello_v4 is answered inline by the loop *)
  | Protocol.Empty | Protocol.Hello_v4 -> R_none
  | Protocol.Hello ->
    let version =
      if job.framed then Frame.version else Protocol.version
    in
    R_lines ([ Protocol.hello_line ~version ~learner:(learner_string st) () ], false)
  | Protocol.Ping -> R_lines ([ Protocol.pong ], false)
  | Protocol.Help -> R_lines (Protocol.help_lines, true)
  | Protocol.Stats -> R_lines (Metrics.render_text st.metrics, true)
  | Protocol.Stats_json -> R_lines ([ Metrics.render_json st.metrics ], false)
  | Protocol.Query atom ->
    handle_query st ~conn:(Conn.id job.conn) ~qid:job.rid ~wait_us ~t0 atom
  | Protocol.Trace atom ->
    handle_trace st ~conn:(Conn.id job.conn) ~qid:job.rid ~wait_us ~t0 atom
  | Protocol.Strategy atom -> handle_strategy st atom
  | Protocol.Flight -> R_lines ([ flight_json st ], false)
  | Protocol.Snapshot -> handle_snapshot st
  | Protocol.Quit -> R_bye
  | Protocol.Shutdown -> R_bye
  | Protocol.Malformed msg ->
    Metrics.error st.metrics;
    R_err (`Malformed, msg)
  | Protocol.Unknown verb ->
    Metrics.error st.metrics;
    R_err (`Unknown_verb, verb)

(* --- worker pool --- *)

let worker_loop st ~domain =
  let dh = Metrics.domain_handles st.metrics ~domain in
  let rec go () =
    match Admission.pop st.queue with
    | None -> ()
    | Some job ->
      let t0 = Unix.gettimeofday () in
      let wait_us = (t0 -. job.enqueued) *. 1e6 in
      Metrics.queue_waited st.metrics ~wait_us;
      (* popping shrinks the queue: refresh the depth gauge so it tracks
         both directions, not just enqueues *)
      Metrics.observe_queue_depth st.metrics (Admission.length st.queue);
      (* stamp pickup and expose the record ambiently, so store waits
         (WAL fsync, page faults) land on the request that paid them *)
      (match job.lc with
      | Some l ->
        l.Lifecycle.lc_worker_ns <- Lifecycle.now_ns ();
        Lifecycle.set_current job.lc
      | None -> ());
      let reply =
        try process st ~wait_us ~t0 job
        with exn ->
          Metrics.error st.metrics;
          Obs.Log.error st.log "request handler crashed"
            ~fields:
              [
                ("conn", Obs.Log.I (Conn.id job.conn));
                ("exn", Obs.Log.S (Printexc.to_string exn));
              ];
          R_err (`Internal, Printexc.to_string exn)
      in
      if job.lc <> None then Lifecycle.set_current None;
      respond st job reply;
      if job.req = Protocol.Shutdown then initiate_shutdown st;
      Metrics.domain_served dh
        ~busy_us:((Unix.gettimeofday () -. t0) *. 1e6);
      go ()
  in
  go ()

(* The worker pool: one OCaml 5 domain per worker, up to the runtime's
   recommended domain count — beyond that, extra parallelism cannot
   help, so surplus workers run as systhreads *inside* the domains
   (round-robin), preserving the configured request concurrency without
   oversubscribing cores. All workers, wherever they live, drain the one
   shared [Admission] queue of requests; its Mutex/Condition pair is
   domain-safe.

   Returns the spawned domains. *)
let effective_domains workers =
  Int.min workers (Int.max 1 (Domain.recommended_domain_count ()))

let spawn_workers st ~n_domains =
  let requested = st.cfg.workers in
  if n_domains < requested then
    Obs.Log.info st.log "workers exceed recommended domain count"
      ~fields:
        [
          ("workers", Obs.Log.I requested);
          ("domains", Obs.Log.I n_domains);
          ( "note",
            Obs.Log.S
              "surplus workers run as systhreads inside the worker domains"
          );
        ];
  Metrics.set_domains st.metrics n_domains;
  let share slot =
    (* workers are dealt round-robin: slot s runs worker s, s+D, ... *)
    ((requested - slot - 1) / n_domains) + 1
  in
  List.init n_domains (fun slot ->
      Domain.spawn (fun () ->
          match share slot with
          | 1 -> worker_loop st ~domain:slot
          | k ->
            List.init k (fun _ ->
                Thread.create (fun () -> worker_loop st ~domain:slot) ())
            |> List.iter Thread.join))

(* --- reactor (loop thread) --- *)

let request_of_frame (f : Frame.t) =
  let no_arg req =
    if f.Frame.payload = "" then req
    else Protocol.Malformed (Frame.kind_name f.Frame.kind ^ " takes no argument")
  in
  let atom mk =
    if f.Frame.payload = "" then
      Protocol.Malformed (Frame.kind_name f.Frame.kind ^ " needs an atom")
    else mk f.Frame.payload
  in
  match f.Frame.kind with
  | Frame.Hello -> no_arg Protocol.Hello
  | Frame.Query -> atom (fun a -> Protocol.Query a)
  | Frame.Trace -> atom (fun a -> Protocol.Trace a)
  | Frame.Strategy -> atom (fun a -> Protocol.Strategy a)
  | Frame.Stats -> no_arg Protocol.Stats
  | Frame.Stats_json -> no_arg Protocol.Stats_json
  | Frame.Snapshot -> no_arg Protocol.Snapshot
  | Frame.Ping -> no_arg Protocol.Ping
  | Frame.Help -> no_arg Protocol.Help
  | Frame.Flight -> no_arg Protocol.Flight
  | Frame.Quit -> no_arg Protocol.Quit
  | Frame.Shutdown -> no_arg Protocol.Shutdown
  | Frame.Ok | Frame.Err | Frame.Busy | Frame.Bye ->
    Protocol.Malformed
      ("unexpected response frame " ^ Frame.kind_name f.Frame.kind)
  | Frame.Unknown c -> Protocol.Unknown (Printf.sprintf "0x%02X" c)

(* Hand one request to the worker pool; a full queue — or this loop's
   share of it exhausted — sheds it with BUSY right here on the loop
   thread. The producer tag makes back-pressure per-loop: a flooding
   loop sheds at its own quota and never starves its peers' slots. *)
let dispatch st c ~framed ~rid req =
  Conn.incr_inflight c;
  let ls = st.loops.(Conn.loop c) in
  ignore (Atomic.fetch_and_add ls.inflight 1);
  let d = Atomic.fetch_and_add st.inflight_total 1 + 1 in
  Metrics.set_pipeline_depth st.metrics d;
  (* the lifecycle record is born here on the loop thread, right after
     the parse — [frame_ns] is its birth stamp — and [queue_ns] is
     stamped before the push so no worker can observe it half-written *)
  let lc =
    if st.cfg.lifecycle then
      Some
        (Lifecycle.create ~conn:(Conn.id c) ~rid ~loop:ls.lid ~framed
           ~label:(request_label req) ~accept_ns:(Conn.accept_ns c)
           ~frame_ns:(Lifecycle.now_ns ()))
    else None
  in
  (match lc with
  | Some l -> l.Lifecycle.lc_queue_ns <- Lifecycle.now_ns ()
  | None -> ());
  let job =
    { conn = c; rid; framed; req; enqueued = Unix.gettimeofday (); lc }
  in
  if Admission.try_push ~producer:ls.lid st.queue job then
    Metrics.observe_queue_depth st.metrics (Admission.length st.queue)
  else begin
    (* never admitted: no queue stage; the shed flag is set by the
       inline BUSY respond below *)
    (match lc with
    | Some l -> l.Lifecycle.lc_queue_ns <- 0L
    | None ->
      Obs.Flight.record ls.flight ~ts_ns:(Lifecycle.now_ns ())
        ~code:Obs.Flight.code_shed ~loop:ls.lid ~conn:(Conn.id c) ~rid
        ~a:0L ~b:0L);
    Metrics.busy st.metrics;
    if Obs.Log.enabled st.log Obs.Log.Debug then
      Obs.Log.debug st.log "request shed: queue full"
        ~fields:
          [
            ("conn", Obs.Log.I (Conn.id c));
            ("loop", Obs.Log.I ls.lid);
            ("queue_depth", Obs.Log.I st.cfg.queue_depth);
          ];
    respond st job R_busy
  end

let on_incoming st c inc =
  match inc with
  | Conn.Line_req Protocol.Empty -> ()  (* blank lines never dispatch *)
  | Conn.Line_req req -> Conn.push_pending c req
  | Conn.Upgrade ->
    (* acknowledge on the line dialect before any response to frames
       that followed the upgrade in the same buffer *)
    Conn.send c
      (Protocol.hello_line ~version:Frame.version
         ~learner:(learner_string st) ()
      ^ "\n")
  | Conn.Frame_req f ->
    dispatch st c ~framed:true ~rid:f.Frame.id (request_of_frame f)
  | Conn.Junk msg ->
    Metrics.error st.metrics;
    if Conn.framed c then
      Conn.send c
        (Frame.encode_string
           { Frame.id = 0; kind = Frame.Err; payload = "malformed " ^ msg })
    else Conn.send c (Protocol.err ~code:`Malformed msg ^ "\n");
    Conn.set_closing c

(* Release one accept-time per-IP slot (loop thread, at reap). *)
let release_ip st ip =
  if st.cfg.max_conns_per_ip > 0 then begin
    Mutex.lock st.ip_lock;
    (match Hashtbl.find_opt st.ip_counts ip with
    | Some n when n > 1 -> Hashtbl.replace st.ip_counts ip (n - 1)
    | Some _ -> Hashtbl.remove st.ip_counts ip
    | None -> ());
    Mutex.unlock st.ip_lock
  end

let reap st ls c =
  if Hashtbl.mem ls.conns (Conn.id c) then begin
    Hashtbl.remove ls.conns (Conn.id c);
    Eventloop.remove ls.ev (Conn.fd c);
    Obs.Flight.record ls.flight ~ts_ns:(Lifecycle.now_ns ())
      ~code:Obs.Flight.code_close ~loop:ls.lid ~conn:(Conn.id c) ~rid:0
      ~a:(if Conn.dead c then 1L else 0L)
      ~b:0L;
    Conn.kill c;
    (try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ());
    ignore (Atomic.fetch_and_add ls.n_conns (-1));
    (* the overflow counters bump exactly once, here: [overflowed] is
       sticky and a shed connection reaches reap exactly once *)
    if Conn.overflowed c then
      Metrics.write_overflow st.metrics ~shed_bytes:(Conn.take_shed_bytes c);
    release_ip st (Conn.ip c);
    Metrics.conn_closed st.metrics;
    Metrics.loop_conn_closed ls.lh;
    if Obs.Log.enabled st.log Obs.Log.Debug then
      Obs.Log.debug st.log "connection closed"
        ~fields:
          [
            ("conn", Obs.Log.I (Conn.id c));
            ("loop", Obs.Log.I ls.lid);
            ("pipeline_hwm", Obs.Log.I (Conn.pipeline_hwm c));
          ]
  end

let update_interest st ls c =
  let read =
    not (Conn.read_closed c)
    && not (Conn.closing c)
    && not (Atomic.get st.stopping)
  in
  Eventloop.modify ls.ev (Conn.fd c) ~read ~write:(Conn.has_output c)

(* The per-connection maintenance step, run whenever anything might have
   changed (socket event, worker completion, shutdown): flush pending
   output, keep the line-mode stop-and-wait pipeline fed, close when
   drained. Idempotent. Loop thread of the owning loop only. *)
let service st ls c =
  if Conn.dead c then reap st ls c
  else if Conn.overflowed c then begin
    (* write cap breached: one best-effort flush of the BUSY notice,
       then disconnect — a reader that never drains costs one buffer,
       not the server's memory *)
    ignore (Conn.flush c);
    reap st ls c
  end
  else begin
    ignore (Conn.flush c);
    if Conn.dead c then reap st ls c
    else begin
      (if not (Conn.framed c) && not (Conn.closing c) && Conn.inflight c = 0
       then
         match Conn.pop_pending c with
         | Some req -> dispatch st c ~framed:false ~rid:(Conn.next_rid c) req
         | None -> ());
      let idle =
        Conn.inflight c = 0
        && Conn.pending_count c = 0
        && not (Conn.has_output c)
      in
      if
        idle
        && (Conn.closing c || Conn.read_closed c || Atomic.get st.stopping)
      then reap st ls c
      else update_interest st ls c
    end
  end

let on_conn_event st ls c ~readable ~writable:_ =
  (if
     readable && not (Conn.read_closed c) && not (Conn.closing c)
     && not (Conn.dead c)
   then begin
     if st.cfg.idle_timeout_s > 0.0 then Conn.touch c ~now:ls.now;
     match Conn.on_readable c ~emit:(on_incoming st c) with
     | Conn.Continue -> ()
     | Conn.Eof ->
       (* honor a final unterminated line, like the blocking server's
          [input_line] did *)
       Conn.finish_read c ~emit:(on_incoming st c);
       Conn.set_read_closed c
     | Conn.Rerror msg ->
       if Obs.Log.enabled st.log Obs.Log.Debug then
         Obs.Log.debug st.log "connection read error"
           ~fields:
             [
               ("conn", Obs.Log.I (Conn.id c));
               ("error", Obs.Log.S msg);
             ];
       Conn.kill c
   end);
  service st ls c

(* --- the loop fleet (one domain per loop) --- *)

(* The idle-timeout wheel's circumference, in one-second buckets. A
   timeout longer than the circumference only means a connection's slot
   comes due before its deadline — the lazy re-bucket below reinserts
   it; correctness never depends on the size. *)
let wheel_slots = 256

(* Bucket [c] by the second of [at], clamped into the future so a
   connection is never filed under a second the sweep has already
   passed (it would then wait a full lap to be seen again). *)
let wheel_insert ls ~at c =
  let s = max (int_of_float at) (int_of_float ls.now + 1) in
  let slot = s mod wheel_slots in
  ls.wheel.(slot) <- c :: ls.wheel.(slot)

(* Adopt sockets the acceptor handed over: materialize the [Conn.t] and
   register the fd, both loop-thread-only operations. *)
let adopt_incoming st ls =
  let batch =
    Mutex.lock ls.inc_lock;
    let rec go acc =
      match Queue.take_opt ls.incoming with
      | None -> List.rev acc
      | Some x -> go (x :: acc)
    in
    let b = go [] in
    Mutex.unlock ls.inc_lock;
    b
  in
  List.iter
    (fun (fd, peer, ip, id, accept_ns) ->
      let c =
        Conn.create ~accept_ns ~id ~loop:ls.lid ~peer ~ip ~limits:st.limits
          fd
      in
      if st.cfg.idle_timeout_s > 0.0 then begin
        Conn.touch c ~now:ls.now;
        wheel_insert ls ~at:(ls.now +. st.cfg.idle_timeout_s) c
      end;
      Hashtbl.replace ls.conns id c;
      Obs.Flight.record ls.flight ~ts_ns:accept_ns
        ~code:Obs.Flight.code_accept ~loop:ls.lid ~conn:id ~rid:0
        ~a:(Int64.of_int ls.lid) ~b:0L;
      Metrics.loop_conn_opened ls.lh;
      Eventloop.add ls.ev fd ~read:true ~write:false
        (fun ~readable ~writable -> on_conn_event st ls c ~readable ~writable);
      if Obs.Log.enabled st.log Obs.Log.Debug then
        Obs.Log.debug st.log "connection accepted"
          ~fields:
            [
              ("conn", Obs.Log.I id);
              ("loop", Obs.Log.I ls.lid);
              ("peer", Obs.Log.S peer);
              ("loop_conns", Obs.Log.I (Hashtbl.length ls.conns));
            ];
      (* a straggler adopted mid-drain is serviced (and so closed once
         idle) immediately *)
      if Atomic.get st.stopping then service st ls c)
    batch

(* Close connections with no traffic for [idle_timeout_s], via the
   hashed timer wheel: a connection is bucketed by its deadline second
   at adopt and re-bucketed lazily when its slot comes due —
   [Conn.touch] never moves it, so servicing traffic costs nothing
   here, and each sweep walks only the buckets whose second has passed
   since the last one: O(due + expired) work, not a full O(open
   connections) table scan per second per loop. A connection that was
   touched since filing is simply re-filed at its new deadline when its
   old bucket drains; one already reaped (the entry no longer in the
   conn table) is dropped. In-flight requests hold a connection open
   regardless — re-checked a second later. Zero cost when the timeout
   is off. *)
let idle_sweep st ls =
  let timeout = st.cfg.idle_timeout_s in
  if timeout > 0.0 && ls.now -. ls.last_sweep >= 1.0 then begin
    let now_s = int_of_float ls.now in
    let first =
      (* after a stall longer than the circumference, one lap covers
         every bucket — never reprocess a slot within one sweep *)
      max (int_of_float ls.last_sweep + 1) (now_s - wheel_slots + 1)
    in
    ls.last_sweep <- ls.now;
    for s = first to now_s do
      let slot = s mod wheel_slots in
      let due = ls.wheel.(slot) in
      ls.wheel.(slot) <- [];
      List.iter
        (fun c ->
          if Hashtbl.mem ls.conns (Conn.id c) then begin
            let deadline = Conn.last_active c +. timeout in
            if deadline > ls.now then wheel_insert ls ~at:deadline c
            else if Conn.inflight c > 0 then
              (* a response is still owed; look again next second *)
              wheel_insert ls ~at:(ls.now +. 1.0) c
            else begin
              Metrics.idle_closed st.metrics;
              if Obs.Log.enabled st.log Obs.Log.Debug then
                Obs.Log.debug st.log "connection closed: idle timeout"
                  ~fields:
                    [
                      ("conn", Obs.Log.I (Conn.id c));
                      ("loop", Obs.Log.I ls.lid);
                      ("idle_timeout_s", Obs.Log.F timeout);
                    ];
              Conn.kill c;
              reap st ls c
            end
          end)
        due
    done
  end

(* --- lifecycle finalize (loop thread) --- *)

(* Keep the newest [n] of a newest-first list. *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Finalize one request's lifecycle record: replay its stamps into the
   loop's flight ring (single-writer: only this loop's thread runs
   this), feed the per-stage latency histograms, and apply tail-based
   retention — the full span tree is kept only for slow / error / shed
   requests. *)
let finalize_lc st ls (lc : Lifecycle.t) =
  let open Lifecycle in
  let ev code ts a b =
    if not (Int64.equal ts 0L) then
      Obs.Flight.record ls.flight ~ts_ns:ts ~code ~loop:ls.lid
        ~conn:lc.lc_conn ~rid:lc.lc_rid ~a ~b
  in
  let total = total_ns lc in
  ev Obs.Flight.code_request lc.lc_frame_ns 0L 0L;
  ev Obs.Flight.code_enqueue lc.lc_queue_ns 0L 0L;
  ev Obs.Flight.code_worker lc.lc_worker_ns
    (Int64.of_int lc.lc_wal_wait_ns)
    (Int64.of_int lc.lc_page_wait_ns);
  if lc.lc_shed then ev Obs.Flight.code_shed lc.lc_respond_ns 0L 0L
  else
    ev Obs.Flight.code_respond lc.lc_respond_ns
      (if lc.lc_error then 1L else 0L)
      0L;
  ev Obs.Flight.code_flush lc.lc_flush_ns total 0L;
  let stage_us from till =
    if Int64.equal from 0L || Int64.equal till 0L then None
    else Some (Int64.to_float (Int64.max 0L (Int64.sub till from)) /. 1e3)
  in
  let obs stage v =
    Option.iter (fun v -> Metrics.observe_stage ls.lh ~stage v) v
  in
  obs "frame" (stage_us lc.lc_frame_ns lc.lc_queue_ns);
  obs "queue" (stage_us lc.lc_queue_ns lc.lc_worker_ns);
  obs "worker" (stage_us lc.lc_worker_ns lc.lc_respond_ns);
  obs "flush" (stage_us lc.lc_respond_ns lc.lc_flush_ns);
  Metrics.observe_stage ls.lh ~stage:"total" (Int64.to_float total /. 1e3);
  if lc.lc_wal_syncs > 0 then
    Metrics.observe_stage ls.lh ~stage:"wal_fsync"
      (float_of_int lc.lc_wal_wait_ns /. 1e3);
  if lc.lc_page_reads > 0 then
    Metrics.observe_stage ls.lh ~stage:"page_read"
      (float_of_int lc.lc_page_wait_ns /. 1e3);
  Metrics.lifecycle_finalized st.metrics;
  (* tail-based retention *)
  let total_us = Int64.to_float total /. 1e3 in
  let reason =
    if lc.lc_shed then Some "shed"
    else if lc.lc_error then Some "error"
    else if st.cfg.slow_query_us > 0.0 && total_us >= st.cfg.slow_query_us
    then Some "slow"
    else None
  in
  match reason with
  | None -> ()
  | Some _ when st.cfg.retain <= 0 -> ()
  | Some reason ->
    let seq = Atomic.fetch_and_add st.retained_seq 1 in
    let entry =
      { re_seq = seq; re_reason = reason; re_total_us = total_us; re_lc = lc }
    in
    Mutex.lock ls.ret_lock;
    ls.retained <- entry :: ls.retained;
    ls.retained_n <- ls.retained_n + 1;
    if ls.retained_n > st.cfg.retain then begin
      ls.retained <- take st.cfg.retain ls.retained;
      ls.retained_n <- st.cfg.retain
    end;
    Mutex.unlock ls.ret_lock;
    Metrics.trace_retained st.metrics ls.lh ~reason ~seq;
    (* the automatic flight dump a retained request triggers: the
       loop's recent ring events, inlined in one rate-limited record *)
    if Obs.Log.enabled st.log Obs.Log.Warn then
      match
        Obs.Log.Limiter.admit st.flight_limiter ~now:(Unix.gettimeofday ())
      with
      | None -> ()
      | Some suppressed ->
        let events = Obs.Flight.snapshot ls.flight in
        let tail =
          take 16 (List.rev events) |> List.rev
          |> List.map Obs.Flight.event_to_json
        in
        Obs.Log.warn st.log "flight: request trace retained"
          ~fields:
            [
              ("loop", Obs.Log.I ls.lid);
              ("conn", Obs.Log.I lc.lc_conn);
              ("rid", Obs.Log.I lc.lc_rid);
              ("reason", Obs.Log.S reason);
              ("total_us", Obs.Log.F total_us);
              ("retained_seq", Obs.Log.I seq);
              ("suppressed", Obs.Log.I suppressed);
              ("events", Obs.Log.J ("[" ^ String.concat "," tail ^ "]"));
            ]

(* Finalize every registered record whose response bytes have drained
   (or whose connection died trying). Oldest first, so ring order
   matches completion order. *)
let finalize_pass st ls =
  Mutex.lock ls.fin_lock;
  let pend = ls.pending_fin in
  ls.pending_fin <- [];
  Mutex.unlock ls.fin_lock;
  match pend with
  | [] -> ()
  | pend -> (
    let keep =
      List.rev pend
      |> List.filter (fun (mark, lc, c) ->
             (* drained-first: a response fully flushed before the
                connection closed (QUIT, BYE) is a success, not an
                error *)
             if Conn.flushed_bytes c >= mark then begin
               lc.Lifecycle.lc_flush_ns <- Lifecycle.now_ns ();
               finalize_lc st ls lc;
               false
             end
             else if Conn.dead c || Conn.overflowed c then begin
               lc.Lifecycle.lc_error <- true;
               finalize_lc st ls lc;
               false
             end
             else true)
    in
    match keep with
    | [] -> ()
    | keep ->
      Mutex.lock ls.fin_lock;
      ls.pending_fin <- ls.pending_fin @ List.rev keep;
      Mutex.unlock ls.fin_lock)

(* The loop's post-poll hook, run once per iteration: adopt handoffs,
   service completions, start the drain once stopping flips, sweep for
   idle connections, refresh this loop's metric series. *)
let loop_tick st ls =
  if st.cfg.idle_timeout_s > 0.0 then ls.now <- Unix.gettimeofday ();
  adopt_incoming st ls;
  let batch =
    Mutex.lock ls.attn_lock;
    let b = !(ls.attention) in
    ls.attention := [];
    Mutex.unlock ls.attn_lock;
    b
  in
  List.iter (service st ls) batch;
  if Atomic.get st.stopping && not ls.draining then begin
    ls.draining <- true;
    Hashtbl.fold (fun _ c acc -> c :: acc) ls.conns []
    |> List.iter (service st ls)
  end;
  (* after the service pass, so a response flushed this very iteration
     finalizes in the same tick *)
  finalize_pass st ls;
  idle_sweep st ls;
  Metrics.set_loop_wakeups ls.lh (Eventloop.wakeups ls.ev);
  Metrics.set_loop_pipeline_depth ls.lh (Atomic.get ls.inflight)

let incoming_empty ls =
  Mutex.lock ls.inc_lock;
  let e = Queue.is_empty ls.incoming in
  Mutex.unlock ls.inc_lock;
  e

(* A loop domain's whole life: poll until told to stop and fully
   drained. The loop's [Eventloop.t] stays open after exit — late
   worker wakes must hit a live eventfd, not a recycled descriptor —
   and is closed by the main thread once every domain has joined. *)
let loop_main st ls =
  Eventloop.on_wake ls.ev (fun () -> loop_tick st ls);
  Eventloop.run ls.ev ~stop:(fun () ->
      Atomic.get st.stopping
      && Hashtbl.length ls.conns = 0
      && Atomic.get ls.inflight = 0
      && incoming_empty ls);
  (* belt and braces for exceptional exits: release any survivors *)
  Hashtbl.iter
    (fun _ c ->
      Eventloop.remove ls.ev (Conn.fd c);
      Conn.kill c;
      try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ())
    ls.conns;
  Hashtbl.reset ls.conns

(* --- acceptor (main thread) --- *)

let shed fd =
  let line = Protocol.busy ^ "\n" in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let ip_of_sockaddr = function
  | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
  | Unix.ADDR_UNIX p -> p

(* Power-of-two-choices placement: probe two loops picked by a rotating
   counter and take the less loaded under the lexicographic load key
   (open connections, then pipeline depth) — strict least-connections
   scanned the whole fleet per accept and, being blind to pipeline
   depth, herded bursty pipelined clients onto one loop. Two probes get
   within a constant factor of the full scan's balance at O(1) cost
   (Mitzenmacher's classic result), and adding in-flight depth as the
   tie-break steers new connections away from loops that are busy
   rather than merely popular. Ties break to the lower loop id and the
   rotation is deterministic, so four connections against an idle
   two-loop fleet still land 2/2. *)
let pick_loop st =
  let n = Array.length st.loops in
  if n = 1 then st.loops.(0)
  else begin
    let r = Atomic.fetch_and_add st.accept_rr 1 in
    let a = st.loops.(r mod n) and b = st.loops.((r + 1) mod n) in
    let load ls = (Atomic.get ls.n_conns, Atomic.get ls.inflight, ls.lid) in
    if load a <= load b then a else b
  end

let total_conns st =
  Array.fold_left (fun acc ls -> acc + Atomic.get ls.n_conns) 0 st.loops

(* Claim a per-IP slot; the matching release happens at reap. *)
let try_admit_ip st ip =
  let cap = st.cfg.max_conns_per_ip in
  cap = 0
  ||
  (Mutex.lock st.ip_lock;
   let n = Option.value ~default:0 (Hashtbl.find_opt st.ip_counts ip) in
   let ok = n < cap in
   if ok then Hashtbl.replace st.ip_counts ip (n + 1);
   Mutex.unlock st.ip_lock;
   ok)

let accept_burst st sock =
  let rec go () =
    match Unix.accept ~cloexec:true sock with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, addr ->
      let id = Atomic.fetch_and_add st.conn_seq 1 in
      let ip = ip_of_sockaddr addr in
      if total_conns st >= st.cfg.max_conns then begin
        Metrics.busy st.metrics;
        shed fd;
        Obs.Log.warn st.log "connection shed: at max-conns"
          ~fields:
            [
              ("conn", Obs.Log.I id);
              ("max_conns", Obs.Log.I st.cfg.max_conns);
            ]
      end
      else if not (try_admit_ip st ip) then begin
        Metrics.ip_limited st.metrics;
        Metrics.busy st.metrics;
        shed fd;
        Obs.Log.warn st.log "connection shed: per-ip cap"
          ~fields:
            [
              ("conn", Obs.Log.I id);
              ("ip", Obs.Log.S ip);
              ("max_conns_per_ip", Obs.Log.I st.cfg.max_conns_per_ip);
            ]
      end
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let ls = pick_loop st in
        ignore (Atomic.fetch_and_add ls.n_conns 1);
        Mutex.lock ls.inc_lock;
        Queue.push
          (fd, string_of_sockaddr addr, ip, id, Lifecycle.now_ns ())
          ls.incoming;
        Mutex.unlock ls.inc_lock;
        Metrics.connection st.metrics;
        Metrics.conn_opened st.metrics;
        Eventloop.wake ls.ev
      end;
      go ()
  in
  go ()

(* The dedicated acceptor: a two-fd select needs no reactor of its own.
   [stop_r] becomes readable the moment {!initiate_shutdown} writes its
   never-drained byte, so shutdown never waits out a poll interval. *)
let acceptor st sock stop_r =
  let rec go () =
    if not (Atomic.get st.stopping) then begin
      (match Unix.select [ sock; stop_r ] [] [] (-1.0) with
      | ready, _, _ -> if List.memq sock ready then accept_burst st sock
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* Sleep the full interval in one timed wait on the shutdown self-pipe
   (the stdlib has no timed [Condition] wait; a [select] with a timeout
   on [stop_r] has the same semantics — it returns early the moment
   [initiate_shutdown] writes its wake-up byte, which is never drained).
   An idle daemon therefore wakes once per interval instead of 5×/s,
   and drain never waits out a residual sleep. *)
let snapshot_loop st stop_r =
  let interval = st.cfg.snapshot_interval in
  let rec go deadline =
    if not (Atomic.get st.stopping) then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0.0 then begin
        (match Unix.select [ stop_r ] [] [] remaining with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go deadline
      end
      else begin
        (try ignore (save_snapshot st) with _ -> ());
        go (Unix.gettimeofday () +. interval)
      end
    end
  in
  go (Unix.gettimeofday () +. interval)

let run ?(handle_signals = false) ?(on_listen = fun _ -> ())
    ?(on_metrics_listen = fun _ -> ()) cfg ~rulebase ~db =
  if cfg.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Server.run: queue_depth must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Server.run: max_conns must be >= 1";
  if cfg.loops < 0 then invalid_arg "Server.run: loops must be >= 0";
  if cfg.max_write_buf < 0 || cfg.max_write_total < 0 then
    invalid_arg "Server.run: write-buffer caps must be >= 0";
  if cfg.idle_timeout_s < 0.0 then
    invalid_arg "Server.run: idle_timeout_s must be >= 0";
  if cfg.max_conns_per_ip < 0 then
    invalid_arg "Server.run: max_conns_per_ip must be >= 0";
  if cfg.retain < 0 then invalid_arg "Server.run: retain must be >= 0";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let log =
    match cfg.log_level with
    | None -> Obs.Log.null
    | Some level -> (
      match cfg.log_file with
      | Some path -> Obs.Log.open_file ~level path
      | None -> Obs.Log.to_channel ~level stderr)
  in
  if cfg.log_level <> None then Obs.Log.install_logs_reporter log;
  let metrics = Metrics.create ~trace_capacity:cfg.trace_sample () in
  let registry =
    Registry.create ~learner:cfg.learner ~config:cfg.learner_config ~rulebase
      metrics
  in
  (match cfg.state_dir with
  | Some dir ->
    let n = Snapshot.load ~dir registry in
    if n > 0 then begin
      Metrics.forms_loaded metrics n;
      Registry.publish_strategies registry;
      Obs.Log.info log "strategies restored from snapshots"
        ~fields:[ ("forms", Obs.Log.I n) ]
    end
  | None -> ());
  let stop_r, stop_w = Unix.pipe () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let n_domains = effective_domains cfg.workers in
  Metrics.set_domains metrics n_domains;
  (* The fleet: one event loop per worker domain unless pinned by
     --loops. Each loop owns a private epoll instance and wake channel. *)
  let n_loops = if cfg.loops = 0 then n_domains else cfg.loops in
  let fleet =
    Array.init n_loops (fun lid ->
        {
          lid;
          ev = Eventloop.create ();
          lh = Metrics.loop_handles metrics ~loop:lid;
          conns = Hashtbl.create 64;
          inc_lock = Mutex.create ();
          incoming = Queue.create ();
          attn_lock = Mutex.create ();
          attention = ref [];
          n_conns = Atomic.make 0;
          inflight = Atomic.make 0;
          draining = false;
          now = 0.0;
          last_sweep = 0.0;
          wheel = Array.make wheel_slots [];
          flight = Obs.Flight.create ~capacity:cfg.flight_capacity;
          fin_lock = Mutex.create ();
          pending_fin = [];
          ret_lock = Mutex.create ();
          retained = [];
          retained_n = 0;
        })
  in
  Metrics.set_loops metrics n_loops;
  Metrics.set_backend metrics (Eventloop.backend fleet.(0).ev);
  let cache =
    if cfg.cache_mb > 0 then
      Some
        (Cache.Answers.create ~subsume:cfg.subsume
           ~capacity_bytes:(cfg.cache_mb * 1024 * 1024) ())
    else None
  in
  let memo = if cfg.cache_mb > 0 then Some (D.Sld.Memo.create ()) else None in
  let c_slow =
    Obs.Registry.Counter.solo
      (Obs.Registry.Counter.v (Metrics.registry metrics)
         ~help:"Queries at or over the slow-query threshold"
         "strategem_slow_queries_total")
  in
  let st =
    {
      cfg;
      metrics;
      registry;
      db;
      log;
      slow_limiter = Obs.Log.Limiter.create ~min_interval_s:1.0;
      trace_next = Atomic.make false;
      c_slow;
      retained_seq = Atomic.make 0;
      flight_limiter = Obs.Log.Limiter.create ~min_interval_s:1.0;
      conn_seq = Atomic.make 1;
      accept_rr = Atomic.make 0;
      queue = Admission.create ~producers:n_loops ~depth:cfg.queue_depth ();
      cache;
      memo;
      stopping = Atomic.make false;
      stop_w;
      loops = fleet;
      limits =
        Conn.limits ~max_buf:cfg.max_write_buf ~global_max:cfg.max_write_total
          ();
      ip_lock = Mutex.create ();
      ip_counts = Hashtbl.create 16;
      inflight_total = Atomic.make 0;
    }
  in
  (* Store-wait attribution: while a worker executes a request, the WAL
     fsyncs and buffer-pool page faults it causes are charged to the
     ambient lifecycle record (see the DLS caveat in Lifecycle). The
     observer is process-global, cleared on the way out. *)
  if cfg.lifecycle then
    Store.Hooks.install (fun ev ns ->
        match Lifecycle.current () with
        | None -> ()
        | Some lc -> (
          match ev with
          | Store.Hooks.Wal_fsync -> Lifecycle.add_wal_wait lc ns
          | Store.Hooks.Page_read -> Lifecycle.add_page_wait lc ns));
  (* A paged (or copy-of-paged) database exposes its store counters;
     an in-memory one reports no store block at all. *)
  (match D.Database.store_stats st.db with
  | Some _ ->
    Metrics.set_store_provider metrics (fun () ->
        match D.Database.store_stats st.db with
        | Some ss -> ss
        | None -> assert false)
  | None -> ());
  Metrics.set_cache_provider metrics (fun () ->
      match st.cache with
      | None -> Metrics.no_cache_stats
      | Some c ->
        let a = Cache.Answers.counters c in
        let m =
          match st.memo with
          | Some m -> D.Sld.Memo.counters m
          | None ->
            D.Sld.Memo.{ hits = 0; misses = 0; invalidations = 0; entries = 0 }
        in
        {
          Metrics.enabled = true;
          hits = a.Cache.Answers.hits;
          misses = a.Cache.Answers.misses;
          evictions = a.Cache.Answers.evictions;
          invalidations = a.Cache.Answers.invalidations;
          entries = a.Cache.Answers.entries;
          bytes = a.Cache.Answers.bytes;
          capacity_bytes = a.Cache.Answers.capacity_bytes;
          memo_hits = m.D.Sld.Memo.hits;
          memo_misses = m.D.Sld.Memo.misses;
          memo_invalidations = m.D.Sld.Memo.invalidations;
          memo_entries = m.D.Sld.Memo.entries;
          subsume = Cache.Answers.subsume_enabled c;
          derived_hits = a.Cache.Answers.derived_hits;
          derived_scan_entries = a.Cache.Answers.derived_scanned;
          subsume_misses = a.Cache.Answers.subsume_misses;
          index_keys = a.Cache.Answers.index_keys;
        });
  (* The metrics responder is created inside the protected body (after
     the main socket binds, so a busy serve port can't leak it) but must
     be torn down on any exit path, hence the ref. *)
  let http = ref None in
  (* The listener closes at drain start (so clients see refusals, not
     hangs) but also on every exceptional path; the ref keeps the close
     single-shot — a second close of a recycled fd number would hit an
     innocent bystander. *)
  let sock_open = ref true in
  let close_sock () =
    if !sock_open then begin
      sock_open := false;
      try Unix.close sock with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      if cfg.lifecycle then Store.Hooks.clear ();
      Option.iter (fun h -> try Obs.Http.stop h with _ -> ()) !http;
      (* loops have joined (or never started) by now: their eventloops
         are closed here, centrally, so a worker's late wake can never
         hit a recycled descriptor *)
      Array.iter (fun ls -> Eventloop.close ls.ev) fleet;
      close_sock ();
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ stop_r; stop_w ];
      Obs.Log.close log)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen sock 256;
      Unix.set_nonblock sock;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      if handle_signals then begin
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> initiate_shutdown st))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        (* SIGQUIT: dump the flight recorder to stderr and keep serving
           — the operator's "what is this fleet doing right now" *)
        try
          Sys.set_signal Sys.sigquit
            (Sys.Signal_handle (fun _ -> prerr_endline (flight_json st)))
        with Invalid_argument _ | Sys_error _ -> ()
      end;
      (match cfg.metrics_port with
      | None -> ()
      | Some mp ->
        let handler ~meth:_ ~path =
          match path with
          | "/metrics" ->
            Some
              {
                Obs.Http.status = 200;
                content_type = "text/plain; version=0.0.4; charset=utf-8";
                body = Metrics.render_prometheus metrics;
              }
          | "/healthz" ->
            Some
              (if Atomic.get st.stopping then Obs.Http.text 503 "draining\n"
               else Obs.Http.text 200 "ready\n")
          | "/debug/flight" ->
            Some
              {
                Obs.Http.status = 200;
                content_type = "application/json";
                body = flight_json st;
              }
          | _ -> None
        in
        let h = Obs.Http.start ~host:cfg.host ~port:mp ~handler () in
        http := Some h;
        on_metrics_listen (Obs.Http.port h));
      let workers = spawn_workers st ~n_domains in
      let snapshotter =
        if cfg.snapshot_interval > 0.0 && cfg.state_dir <> None then
          Some (Thread.create (fun () -> snapshot_loop st stop_r) ())
        else None
      in
      (* Spawn the fleet: one domain per event loop. The loops mostly
         block in epoll_wait (which releases the runtime), so fleet
         domains on top of worker domains don't oversubscribe cores. *)
      let loop_domains =
        Array.map (fun ls -> Domain.spawn (fun () -> loop_main st ls)) fleet
      in
      on_listen port;
      Obs.Log.info log "accepting connections"
        ~fields:
          [
            ("host", Obs.Log.S cfg.host);
            ("port", Obs.Log.I port);
            ("backend", Obs.Log.S (Eventloop.backend fleet.(0).ev));
            ("loops", Obs.Log.I n_loops);
            ("workers", Obs.Log.I cfg.workers);
            ("domains", Obs.Log.I n_domains);
            ("queue_depth", Obs.Log.I cfg.queue_depth);
            ("max_conns", Obs.Log.I cfg.max_conns);
            ( "learner",
              Obs.Log.S (Core.Learner.kind_to_string cfg.learner) );
            ( "metrics_port",
              match !http with
              | Some h -> Obs.Log.I (Obs.Http.port h)
              | None -> Obs.Log.J "null" );
          ];
      (* The main thread is the dedicated acceptor until shutdown. *)
      acceptor st sock stop_r;
      (* Drain: stop accepting, close the queue (workers finish what's
         dispatched, then exit), and wake every loop so each drains its
         own connections. The metrics responder stays up through the
         drain so /healthz reports "draining" to probes. *)
      Obs.Log.info log "shutdown initiated: draining"
        ~fields:
          [
            ("inflight", Obs.Log.I (Atomic.get st.inflight_total));
            ("conns_open", Obs.Log.I (total_conns st));
          ];
      close_sock ();
      Admission.close st.queue;
      Array.iter (fun ls -> Eventloop.wake ls.ev) fleet;
      Array.iter Domain.join loop_domains;
      List.iter Domain.join workers;
      Option.iter Thread.join snapshotter;
      (try ignore (save_snapshot st) with _ -> ());
      Obs.Log.info log "server stopped"
        ~fields:
          [
            ("queries_total", Obs.Log.I (Metrics.queries_total metrics));
            ("climbs_total", Obs.Log.I (Metrics.climbs_total metrics));
          ])
