let version = 4
let magic = '\x84'
let header_size = 10
let max_payload = 4 * 1024 * 1024
let max_id = 0xFFFF_FFFF

type kind =
  | Hello
  | Query
  | Trace
  | Strategy
  | Stats
  | Stats_json
  | Snapshot
  | Ping
  | Help
  | Flight
  | Quit
  | Shutdown
  | Ok
  | Err
  | Busy
  | Bye
  | Unknown of int

type t = { id : int; kind : kind; payload : string }

let kind_code = function
  | Hello -> 0x01
  | Query -> 0x02
  | Trace -> 0x03
  | Strategy -> 0x04
  | Stats -> 0x05
  | Stats_json -> 0x06
  | Snapshot -> 0x07
  | Ping -> 0x08
  | Quit -> 0x09
  | Shutdown -> 0x0A
  | Help -> 0x0B
  | Flight -> 0x0C
  | Ok -> 0x81
  | Err -> 0x82
  | Busy -> 0x83
  | Bye -> 0x84
  | Unknown c -> c land 0xFF

let kind_of_code = function
  | 0x01 -> Hello
  | 0x02 -> Query
  | 0x03 -> Trace
  | 0x04 -> Strategy
  | 0x05 -> Stats
  | 0x06 -> Stats_json
  | 0x07 -> Snapshot
  | 0x08 -> Ping
  | 0x09 -> Quit
  | 0x0A -> Shutdown
  | 0x0B -> Help
  | 0x0C -> Flight
  | 0x81 -> Ok
  | 0x82 -> Err
  | 0x83 -> Busy
  | 0x84 -> Bye
  | c -> Unknown c

let is_request k = kind_code k < 0x80

let kind_name = function
  | Hello -> "HELLO"
  | Query -> "QUERY"
  | Trace -> "TRACE"
  | Strategy -> "STRATEGY"
  | Stats -> "STATS"
  | Stats_json -> "STATS_JSON"
  | Snapshot -> "SNAPSHOT"
  | Ping -> "PING"
  | Help -> "HELP"
  | Flight -> "FLIGHT"
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"
  | Ok -> "OK"
  | Err -> "ERR"
  | Busy -> "BUSY"
  | Bye -> "BYE"
  | Unknown c -> Printf.sprintf "0x%02X" (c land 0xFF)

let add_u32_be buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let encode buf { id; kind; payload } =
  if id < 0 || id > max_id then
    invalid_arg (Printf.sprintf "Frame.encode: id %d out of u32 range" id);
  let len = String.length payload in
  if len > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: payload %d > max %d" len
                   max_payload);
  Buffer.add_char buf magic;
  Buffer.add_char buf (Char.chr (kind_code kind));
  add_u32_be buf id;
  add_u32_be buf len;
  Buffer.add_string buf payload

let encode_string f =
  let buf = Buffer.create (header_size + String.length f.payload) in
  encode buf f;
  Buffer.contents buf

let u32_be b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

type decoded = Frame of t * int | Need_more of int | Corrupt of string

let decode b ~pos ~limit =
  let avail = limit - pos in
  if avail <= 0 then Need_more header_size
  else if Bytes.get b pos <> magic then
    Corrupt
      (Printf.sprintf "bad magic 0x%02X (expected 0x84)"
         (Char.code (Bytes.get b pos)))
  else if avail < header_size then Need_more header_size
  else
    let kind = kind_of_code (Char.code (Bytes.get b (pos + 1))) in
    let id = u32_be b (pos + 2) in
    let len = u32_be b (pos + 6) in
    if len > max_payload then
      Corrupt (Printf.sprintf "frame length %d exceeds max %d" len max_payload)
    else if avail < header_size + len then Need_more (header_size + len)
    else
      let payload = Bytes.sub_string b (pos + header_size) len in
      Frame ({ id; kind; payload }, header_size + len)

let read ic =
  let hdr = Bytes.create header_size in
  (* A clean EOF before the first header byte is a normal close; anything
     torn mid-frame is a protocol error. *)
  (try really_input ic hdr 0 1
   with End_of_file -> raise End_of_file);
  (try really_input ic hdr 1 (header_size - 1)
   with End_of_file -> failwith "Frame.read: truncated header");
  if Bytes.get hdr 0 <> magic then
    failwith
      (Printf.sprintf "Frame.read: bad magic 0x%02X"
         (Char.code (Bytes.get hdr 0)));
  let kind = kind_of_code (Char.code (Bytes.get hdr 1)) in
  let id = u32_be hdr 2 in
  let len = u32_be hdr 6 in
  if len > max_payload then
    failwith (Printf.sprintf "Frame.read: frame length %d exceeds max" len);
  let payload = Bytes.create len in
  (try really_input ic payload 0 len
   with End_of_file -> failwith "Frame.read: truncated payload");
  { id; kind; payload = Bytes.unsafe_to_string payload }
