(** The wire protocol: a line-oriented request/reply dialect (one request
    per line, replies of one or more lines, multi-line replies terminated
    by [END]). Full specification in [docs/SERVING.md].

    Parsing is total — an unrecognized line becomes {!Unknown} and the
    server answers [ERR]. Command words are case-insensitive; arguments
    (Datalog atoms) are passed through verbatim. *)

type request =
  | Query of string     (** [QUERY <atom>] — answer one query, learning *)
  | Stats               (** [STATS] — metrics as text, [END]-terminated *)
  | Stats_json          (** [STATS JSON] — metrics as one JSON line *)
  | Snapshot            (** [SNAPSHOT] — persist all learned strategies *)
  | Strategy of string  (** [STRATEGY <atom>] — a form's current strategy *)
  | Ping                (** [PING] — liveness probe *)
  | Help                (** [HELP] — list commands, [END]-terminated *)
  | Quit                (** [QUIT] — close this connection *)
  | Shutdown            (** [SHUTDOWN] — drain and stop the server *)
  | Empty               (** blank line — ignored *)
  | Unknown of string

val parse : string -> request

(** Terminator line for multi-line replies. *)
val terminator : string

(** The [HELP] reply body. *)
val help_lines : string list

(** Reply formatting: [ANSWER ...], [ERR <msg>] (message flattened to one
    line), [BUSY], [BYE], [PONG]. *)

val answer_line :
  result:string -> reductions:int -> retrievals:int -> switched:bool ->
  string

val err : string -> string
val busy : string
val bye : string
val pong : string
