(** The wire protocol: a line-oriented request/reply dialect (one request
    per line, replies of one or more lines, multi-line replies terminated
    by [END]). Full specification in [docs/SERVING.md].

    Protocol {!version} 3 (v3 adds the [cached] token to [ANSWER] lines
    and the ["cached"] field to [TRACE] replies). A client can start with
    [HELLO] to learn the server's protocol version and learner before
    relying on either.

    Parsing is total — a recognized verb with bad arguments becomes
    {!Malformed}, an unrecognized verb {!Unknown} (carrying just the verb
    word); the server answers a structured [ERR <code> <message>] line
    either way. Command words are case-insensitive; arguments (Datalog
    atoms) are passed through verbatim. *)

type request =
  | Hello               (** [HELLO] — protocol banner *)
  | Hello_v4
      (** [HELLO V4] — upgrade this connection to the framed v4 dialect
          ({!Frame}). A v3 server answers [ERR malformed ...], which is
          how a client discovers it must fall back to lines. *)
  | Query of string     (** [QUERY <atom>] — answer one query, learning *)
  | Trace of string
      (** [TRACE <atom>] — answer one query and return its span tree *)
  | Stats               (** [STATS] — metrics as text, [END]-terminated *)
  | Stats_json          (** [STATS JSON] — metrics as one JSON line *)
  | Snapshot            (** [SNAPSHOT] — persist all learned strategies *)
  | Strategy of string  (** [STRATEGY <atom>] — a form's current strategy *)
  | Ping                (** [PING] — liveness probe *)
  | Help                (** [HELP] — list commands, [END]-terminated *)
  | Flight
      (** [FLIGHT] — the per-loop flight-recorder rings and retained
          lifecycle traces as one JSON line (see docs/TRACING.md) *)
  | Quit                (** [QUIT] — close this connection *)
  | Shutdown            (** [SHUTDOWN] — drain and stop the server *)
  | Empty               (** blank line — ignored *)
  | Malformed of string (** known verb, unusable arguments *)
  | Unknown of string   (** unrecognized verb (the verb word) *)

(** The wire protocol version announced by [HELLO]. *)
val version : int

val parse : string -> request

val parse_sub : Bytes.t -> pos:int -> len:int -> request
(** [parse_sub b ~pos ~len] parses one request from
    [b.[pos .. pos+len-1]] without allocating the line: the verb is
    matched in place and only the argument (when the verb takes one) is
    copied out. The reactor calls this directly on connection read
    buffers. Total — never raises, never mutates [b] — and agrees with
    {!parse} on every byte sequence (property-tested). *)

(** Terminator line for multi-line replies. *)
val terminator : string

(** The [HELP] reply body. *)
val help_lines : string list

(** Reply formatting: [ANSWER ...], [HELLO ...], [TRACE <json>],
    [ERR <code> <msg>] (message flattened to one line), [BUSY], [BYE],
    [PONG]. *)

(** [cached] adds a [cached] token (before [switched]): the answer was
    served from the answer cache and [reductions]/[retrievals] are 0.
    [derived] (with [cached]) renders the token as [cached=derived]: the
    answer was read off a θ-more-general cached entry by subsumption, not
    an exact alpha-variant key. *)
val answer_line :
  ?derived:bool -> result:string -> reductions:int -> retrievals:int ->
  cached:bool -> switched:bool -> unit -> string

(** [HELLO strategem/<version> learner=<learner>]. [?version] defaults
    to the line-dialect {!version}; the server passes {!Frame.version}
    when answering over an upgraded (framed) connection. *)
val hello_line : ?version:int -> learner:string -> unit -> string

val trace_line : string -> string

(** Machine-readable error classes, the first token after [ERR]. *)
type err_code =
  [ `Parse          (** the atom argument did not parse *)
  | `Unknown_verb   (** no such command *)
  | `Malformed      (** known command, unusable arguments *)
  | `Unsupported    (** the form cannot be served (e.g. conjunctive) *)
  | `No_state_dir   (** [SNAPSHOT] without [--state-dir] *)
  | `Internal       (** anything else *) ]

val err_code_to_string : err_code -> string
val err : code:err_code -> string -> string
val busy : string
val bye : string
val pong : string
