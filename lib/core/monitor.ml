open Infgraph
open Strategy

type learner = {
  observe : Spec.dfs -> Context.t -> Exec.outcome -> unit;
  propose : unit -> Spec.dfs option;
  finished : unit -> bool;
}

let null_learner =
  {
    observe = (fun _ _ _ -> ());
    propose = (fun () -> None);
    finished = (fun () -> false);
  }

let of_pib pib =
  let proposal = ref None in
  {
    observe =
      (fun _theta _ctx outcome ->
        match Pib.observe pib outcome with
        | Some climb -> proposal := Some climb.Pib.to_strategy
        | None -> ());
    propose =
      (fun () ->
        let p = !proposal in
        proposal := None;
        p);
    finished = (fun () -> false);
  }

let of_palo palo =
  let proposal = ref None in
  {
    observe =
      (fun _theta ctx outcome ->
        match Palo.observe palo ctx outcome with
        | Some climb -> proposal := Some climb.Pib.to_strategy
        | None -> ());
    propose =
      (fun () ->
        let p = !proposal in
        proposal := None;
        p);
    finished =
      (fun () ->
        match Palo.status palo with
        | Palo.Stopped _ -> true
        | Palo.Running -> false);
  }

let of_learner l =
  {
    observe = (fun _theta ctx outcome -> Learner.observe l ctx outcome);
    propose = (fun () -> Learner.conjecture l);
    finished = (fun () -> Learner.finished l);
  }

type t = {
  learner : learner;
  mutable theta : Spec.dfs;
  mutable queries : int;
  mutable cost : float;
  mutable switches : (int * Spec.dfs) list; (* newest first *)
}

let create theta learner = { learner; theta; queries = 0; cost = 0.; switches = [] }

let strategy t = t.theta
let queries t = t.queries
let total_cost t = t.cost
let switches t = List.rev t.switches

let answer ?(tracer = Trace.null) ?(parent = Trace.dummy) t ctx =
  let exec_span = Trace.push tracer parent ~kind:"exec" "exec" in
  let outcome = Exec.run ~tracer ~parent:exec_span (Spec.Dfs t.theta) ctx in
  Trace.finish tracer exec_span;
  t.queries <- t.queries + 1;
  t.cost <- t.cost +. outcome.Exec.cost;
  let switched =
    if t.learner.finished () then false
    else begin
      t.learner.observe t.theta ctx outcome;
      match t.learner.propose () with
      | Some theta' ->
        t.theta <- theta';
        t.switches <- (t.queries, theta') :: t.switches;
        true
      | None -> false
    end
  in
  (outcome, switched)

let serve t oracle ~n =
  for _ = 1 to n do
    ignore (answer t (Oracle.next oracle))
  done
