(** PALO — probably approximately locally optimal hill-climbing
    ([CG91], discussed at the end of Section 3.2).

    PALO climbs like {!Pib} but, unlike PIB (which samples forever), it
    terminates: it stops at a strategy Θ_m that is, with confidence 1−δ,
    an ε-local optimum —

    ∀ Θ′ ∈ 𝒯(Θ_m).  C[Θ′] ≥ C[Θ_m] − ε.

    Design decision (recorded in DESIGN.md §3): PALO here uses {e paired
    execution} — each sampled context is solved by the current strategy
    {e and} by each neighbour, so every Δ[Θ, Θ′, I] is exact (the
    "a posteriori" comparison of Section 3.1). The unobtrusive trace-only
    bounds PIB uses cannot drive PALO's stopping rule: the optimistic
    completion Δ̂ does not converge to the true difference (it forever
    credits the neighbour with instant success in subtrees the current
    strategy never explores), so the stop test would never fire. Paired
    execution costs |𝒯(Θ)| extra executions per sample but terminates with
    the exact [CG91] guarantee; it also lifts PIB's simple-disjunctive
    restriction, since no completion argument is needed.

    Tests are budgeted with the same sequential δ_i = 6δ/(π²i²) schedule;
    a climb fires when Σ Δ ≥ Λ√((n/2)·ln(i²π²/6δ)) (Equation 6 with exact
    Δ) and the learner stops when every neighbour's upper confidence bound
    on D[Θ, Θ′] falls below ε. *)

open Infgraph
open Strategy

type config = {
  delta : float;
  epsilon : float;
  moves : Moves.family;
  check_every : int;
  answers_required : int;  (** first-k stopping count (default 1) *)
}

val default_config : config

type status =
  | Running
  | Stopped of { at_samples : int; total_samples : int }

type t

val create : ?config:config -> Spec.dfs -> t
val current : t -> Spec.dfs
val config : t -> config
val status : t -> status
val climbs : t -> Pib.climb list
val samples_total : t -> int

(** Executions of neighbour strategies performed so far (the price of
    paired evaluation). *)
val paired_executions : t -> int

(** Feed one context already answered by the current strategy (Figure 4:
    the QP ran, PALO evaluates the neighbours on the same context); no-op
    once stopped. *)
val observe : t -> Context.t -> Exec.outcome -> Pib.climb option

(** Process one context (runs Θ and each neighbour on it); no-op once
    stopped. *)
val step : t -> Context.t -> Exec.outcome option * Pib.climb option

(** Run until stopped or [max_contexts] exhausted; returns final status. *)
val run : t -> Oracle.t -> max_contexts:int -> status
