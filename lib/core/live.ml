module D = Datalog
open Infgraph
open Strategy

type t = {
  rulebase : D.Rulebase.t;
  built : Build.result;
  mutable pib : Pib.t;
  mutable order_by_pred : (int, D.Clause.t list) Hashtbl.t;
  mutable queries : int;
  mutable reductions : int;
  mutable retrievals : int;
}

(* Read the per-predicate rule order off the strategy: breadth-first over
   the graph, first node wins for its predicate. *)
let derive_orders built (d : Spec.dfs) =
  let g = built.Build.graph in
  let tbl = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add (Graph.root g) queue;
  while not (Queue.is_empty queue) do
    let node_id = Queue.pop queue in
    let node = Graph.node g node_id in
    (match node.Graph.goal with
    | Some goal ->
      let pred = D.Symbol.id goal.D.Atom.pred in
      if not (Hashtbl.mem tbl pred) then begin
        let clauses =
          List.filter_map
            (fun arc_id -> List.assoc_opt arc_id built.Build.rule_arcs)
            d.Spec.orders.(node_id)
        in
        if clauses <> [] then Hashtbl.add tbl pred clauses
      end
    | None -> ());
    List.iter
      (fun arc_id -> Queue.add (Graph.arc g arc_id).Graph.dst queue)
      d.Spec.orders.(node_id)
  done;
  tbl

let create ?config ~rulebase ~query_form () =
  let built = Build.build ~rulebase ~query_form () in
  let start = Spec.default built.Build.graph in
  let pib = Pib.create ?config start in
  {
    rulebase;
    built;
    pib;
    order_by_pred = derive_orders built start;
    queries = 0;
    reductions = 0;
    retrievals = 0;
  }

let graph t = t.built.Build.graph
let strategy t = Pib.current t.pib
let pib t = t.pib
let queries t = t.queries
let work t = (t.reductions, t.retrievals)
let climbs t = List.length (Pib.climbs t.pib)

let set_strategy t d =
  if d.Spec.graph != t.built.Build.graph then
    invalid_arg "Live.set_strategy: strategy built on a different graph";
  t.pib <- Pib.create ~config:(Pib.config t.pib) d;
  t.order_by_pred <- derive_orders t.built d

type answer = {
  result : D.Subst.t option;
  stats : D.Sld.stats;
  switched : bool;
}

let rule_order t goal rules =
  match Hashtbl.find_opt t.order_by_pred (D.Symbol.id goal.D.Atom.pred) with
  | None -> rules
  | Some preferred ->
    let position clause =
      let rec go i = function
        | [] -> max_int
        | c :: rest -> if D.Clause.equal c clause then i else go (i + 1) rest
      in
      go 0 preferred
    in
    List.stable_sort
      (fun c1 c2 -> Int.compare (position c1) (position c2))
      rules

let answer t ~db query =
  let cfg =
    D.Sld.config
      ~rule_order:(fun goal rules -> rule_order t goal rules)
      ~rulebase:t.rulebase ~db ()
  in
  let result, stats = D.Sld.solve_first cfg [ D.Clause.Pos query ] in
  t.queries <- t.queries + 1;
  t.reductions <- t.reductions + stats.D.Sld.reductions;
  t.retrievals <- t.retrievals + stats.D.Sld.retrievals;
  (* Learn: derive the context this query induced and feed PIB with the
     current strategy's execution of it (which mirrors the SLD run). *)
  let ctx = Context.of_db (graph t) ~query ~db in
  let outcome = Exec.run (Spec.Dfs (Pib.current t.pib)) ctx in
  let switched =
    match Pib.observe t.pib outcome with
    | Some _climb ->
      t.order_by_pred <- derive_orders t.built (Pib.current t.pib);
      true
    | None -> false
  in
  { result; stats; switched }
