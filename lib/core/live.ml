module D = Datalog
open Infgraph
open Strategy

type t = {
  rulebase : D.Rulebase.t;
  built : Build.result;
  mutable learner : Learner.t;
  mutable order_by_pred : (int, D.Clause.t list) Hashtbl.t;
  mutable queries : int;
  mutable switches : int;
  mutable reductions : int;
  mutable retrievals : int;
  mutable event_hook : (Learner.event -> unit) option;
      (* remembered so reseeding (which builds a hookless learner)
         keeps the telemetry stream alive *)
}

(* Read the per-predicate rule order off the strategy: breadth-first over
   the graph, first node wins for its predicate. *)
let derive_orders built (d : Spec.dfs) =
  let g = built.Build.graph in
  let tbl = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add (Graph.root g) queue;
  while not (Queue.is_empty queue) do
    let node_id = Queue.pop queue in
    let node = Graph.node g node_id in
    (match node.Graph.goal with
    | Some goal ->
      let pred = D.Symbol.id goal.D.Atom.pred in
      if not (Hashtbl.mem tbl pred) then begin
        let clauses =
          List.filter_map
            (fun arc_id -> List.assoc_opt arc_id built.Build.rule_arcs)
            d.Spec.orders.(node_id)
        in
        if clauses <> [] then Hashtbl.add tbl pred clauses
      end
    | None -> ());
    List.iter
      (fun arc_id -> Queue.add (Graph.arc g arc_id).Graph.dst queue)
      d.Spec.orders.(node_id)
  done;
  tbl

let create ?(learner = `Pib) ?config ~rulebase ~query_form () =
  let built = Build.build ~rulebase ~query_form () in
  let start = Spec.default built.Build.graph in
  let learner = Learner.create ?config learner start in
  {
    rulebase;
    built;
    learner;
    order_by_pred = derive_orders built start;
    queries = 0;
    switches = 0;
    reductions = 0;
    retrievals = 0;
    event_hook = None;
  }

let graph t = t.built.Build.graph
let strategy t = Learner.current t.learner
let learner t = t.learner
let learner_name t = Learner.name t.learner
let queries t = t.queries
let work t = (t.reductions, t.retrievals)
let climbs t = t.switches

let on_event t f =
  t.event_hook <- Some f;
  Learner.set_hook t.learner f

let set_strategy t d =
  if d.Spec.graph != t.built.Build.graph then
    invalid_arg "Live.set_strategy: strategy built on a different graph";
  t.learner <- Learner.reseed t.learner d;
  (match t.event_hook with
  | Some f -> Learner.set_hook t.learner f
  | None -> ());
  t.order_by_pred <- derive_orders t.built d

type answer = {
  result : D.Subst.t option;
  stats : D.Sld.stats;
  cost : float;
  switched : bool;
  cached : bool;
  derived : bool;
  enumerated : D.Sld.enum option;
}

let rule_order t goal rules =
  match Hashtbl.find_opt t.order_by_pred (D.Symbol.id goal.D.Atom.pred) with
  | None -> rules
  | Some preferred ->
    let position clause =
      let rec go i = function
        | [] -> max_int
        | c :: rest -> if D.Clause.equal c clause then i else go (i + 1) rest
      in
      go 0 preferred
    in
    List.stable_sort
      (fun c1 c2 -> Int.compare (position c1) (position c2))
      rules

(* Root a fresh [query] span unless the caller supplied one (the serve
   path roots a [serve] span covering queue wait as well). *)
let root_span tracer parent query =
  match parent with
  | Some sp -> (false, sp)
  | None ->
    ( true,
      if Trace.enabled tracer then
        Trace.root tracer ~kind:"query" (D.Atom.to_string query)
      else Trace.dummy )

(* The learning half of an answer: derive the context this query induced
   and feed the learner with the current strategy's execution of it (which
   mirrors the SLD run). This runs for every query, cached or not — the
   learner must see the full query distribution and the true paper-cost
   c(Theta, I), which the execution recomputes from the database regardless
   of how the answer itself was produced. *)
let learn ~tracer ~parent t ~db query =
  let ctx = Context.of_db (graph t) ~query ~db in
  let exec_span = Trace.push tracer parent ~kind:"exec" "exec" in
  let outcome =
    Exec.run ~tracer ~parent:exec_span (Spec.Dfs (strategy t)) ctx
  in
  Trace.finish tracer exec_span;
  let learn_span = Trace.push tracer parent ~kind:"learn" "learn" in
  if Trace.enabled tracer then
    Trace.set_attr tracer learn_span "learner" (Learner.name t.learner);
  Learner.observe t.learner ctx outcome;
  let switched =
    match Learner.conjecture t.learner with
    | Some d ->
      t.order_by_pred <- derive_orders t.built d;
      t.switches <- t.switches + 1;
      if Trace.enabled tracer then
        Trace.event tracer learn_span ~kind:"climb"
          ~attrs:[ ("to", Format.asprintf "%a" Spec.pp_dfs d) ]
          "climb";
      true
    | None -> false
  in
  Trace.finish tracer learn_span;
  (outcome.Exec.cost, switched)

let answer ?(tracer = Trace.null) ?parent ?memo ?(enumerate = 0) t ~db query =
  let owns_root, parent = root_span tracer parent query in
  let sld_span = Trace.push tracer parent ~kind:"sld" "sld" in
  let cfg =
    D.Sld.config
      ~rule_order:(fun goal rules -> rule_order t goal rules)
      ~tracer ~parent:sld_span ?memo ~rulebase:t.rulebase ~db ()
  in
  (* With [enumerate], the derivation is pulled past the first success node
     (up to the cap) so a caller can cache the answer set. The reported
     [stats] are snapshotted at the first answer either way — the
     satisficing-search cost stays what the wire and [work] report; the
     enumeration tail's work lives in [enumerated.extra_*]. *)
  let result, stats, enumerated =
    if enumerate > 0 then
      let r, st, en =
        D.Sld.solve_first_enum ~limit:enumerate cfg [ D.Clause.Pos query ]
      in
      (r, st, Some en)
    else
      let r, st = D.Sld.solve_first cfg [ D.Clause.Pos query ] in
      (r, st, None)
  in
  Trace.finish tracer sld_span;
  t.queries <- t.queries + 1;
  t.reductions <- t.reductions + stats.D.Sld.reductions;
  t.retrievals <- t.retrievals + stats.D.Sld.retrievals;
  let cost, switched = learn ~tracer ~parent t ~db query in
  if owns_root then Trace.finish tracer parent;
  { result; stats; cost; switched; cached = false; derived = false; enumerated }

let answer_cached ?(tracer = Trace.null) ?parent ?(derived = false) t ~db
    ~result query =
  let owns_root, parent = root_span tracer parent query in
  t.queries <- t.queries + 1;
  let cost, switched = learn ~tracer ~parent t ~db query in
  if owns_root then Trace.finish tracer parent;
  {
    result;
    stats = D.Sld.fresh_stats ();
    cost;
    switched;
    cached = true;
    derived;
    enumerated = None;
  }
