(** PIB — the anytime hill-climbing learner (Section 3.2, Figure 3).

    PIB watches the query processor solve contexts with its current
    strategy Θ_j. For every neighbour Θ′ ∈ 𝒯(Θ_j) (a sibling swap) it
    maintains the running under-estimate Δ̃[Θ_j, Θ′, S] over the current
    sample set S, computed from the execution trace alone
    ({!Delta.underestimate}). After each context (or each [check_every]
    contexts) it charges the sequential-test budget
    [i ← i + |𝒯(Θ_j)|] and switches to a neighbour that passes
    Equation 6:

    Δ̃[Θ_j, Θ′, S] ≥ Λ[Θ_j, Θ′] · sqrt((|S|/2) · ln(i²π²/6δ)).

    Theorem 1: the probability that {e any} climb in the infinite run is a
    mistake (moves to a strictly worse strategy) is below δ. *)

open Infgraph
open Strategy

type config = {
  delta : float;          (** total confidence budget δ *)
  moves : Moves.family;   (** the transformation set 𝒯 (default all swaps) *)
  check_every : int;      (** run the Equation 6 test every k contexts *)
  answers_required : int;
      (** satisficing stop count (Section 5.2's first-k variant; 1 = the
          paper's single-answer search) *)
}

val default_config : config

type climb = {
  step : int;                  (** 1-based climb index j *)
  samples : int;               (** |S| when the test fired *)
  tests_charged : int;         (** the sequential index i *)
  move : Moves.t;
  from_strategy : Spec.dfs;
  to_strategy : Spec.dfs;
  delta_sum : float;           (** winning Δ̃[Θ_j, Θ′, S] *)
  threshold : float;           (** Equation 6 right-hand side *)
}

type t

(** Raises [Invalid_argument] unless the graph is simple disjunctive
    (see {!Delta}). *)
val create : ?config:config -> Spec.dfs -> t

val current : t -> Spec.dfs
val config : t -> config

(** Number of climbs performed so far. *)
val climbs : t -> climb list

(** Contexts processed in the current sample set S. *)
val samples_current : t -> int

(** Total contexts processed since creation. *)
val samples_total : t -> int

(** Elementary sequential tests charged so far (the index [i] of
    Equation 6) — telemetry for the convergence gauges. *)
val tests_used : t -> int

(** Feed one execution outcome of the {e current} strategy (Figure 4: the
    QP runs, PIB watches); may climb. *)
val observe : t -> Exec.outcome -> climb option

(** Process one context: the QP answers it with the current strategy; PIB
    updates its statistics and possibly climbs. Returns the execution
    outcome and the climb, if one happened. *)
val step : t -> Context.t -> Exec.outcome * climb option

(** Run [n] contexts from an oracle. Returns the climbs that occurred. *)
val run : t -> Oracle.t -> n:int -> climb list

(** Current Δ̃ sums with their ranges, for inspection: (move, Δ̃ sum, Λ). *)
val candidates : t -> (Moves.t * float * float) list
