open Infgraph
open Strategy

(* Convergence telemetry: a point-in-time reading of how far the
   learner's statistical machinery has progressed. [epsilon] is the
   learner's own notion of its current accuracy bound — per-sample
   Equation 6 threshold for PIB, Equation 3 threshold over m for PIB₁,
   the scaled-target shortfall for PAO, the configured target for PALO;
   see docs/OBSERVABILITY.md for the exact definitions. *)
type progress = {
  samples : int;  (* current sample set |S| where the learner keeps one *)
  samples_total : int;
  climbs : int;
  epsilon : float;  (* +inf before any evidence; shrinks as samples grow *)
  delta : float;  (* the confidence budget *)
  finished : bool;
}

module type S = sig
  type t

  val name : string
  val observe : t -> Context.t -> Exec.outcome -> unit
  val current : t -> Spec.dfs
  val conjecture : t -> Spec.dfs option
  val finished : t -> bool
  val serialize : t -> string
  val progress : t -> progress
end

module Pib_learner = struct
  type t = { pib : Pib.t; mutable pending : Spec.dfs option }

  let name = "pib"
  let create ?config start = { pib = Pib.create ?config start; pending = None }

  let observe t _ctx outcome =
    match Pib.observe t.pib outcome with
    | Some climb -> t.pending <- Some climb.Pib.to_strategy
    | None -> ()

  let current t = Pib.current t.pib

  let conjecture t =
    let p = t.pending in
    t.pending <- None;
    p

  let finished _ = false
  let serialize t = Persist.dfs_to_string (current t)
  let pib t = t.pib

  (* ε = Equation 6's per-sample threshold at the current test index:
     the climb fires when the mean per-sample advantage reaches it, so
     it is the resolution below which PIB cannot yet distinguish
     neighbours. Range Λ is the widest candidate's. *)
  let progress t =
    let n = Pib.samples_current t.pib in
    let i = Pib.tests_used t.pib in
    let cfg = Pib.config t.pib in
    let range =
      List.fold_left
        (fun acc (_, _, lambda) -> Float.max acc lambda)
        0.0 (Pib.candidates t.pib)
    in
    let epsilon =
      if range = 0.0 then 0.0
      else if n = 0 || i = 0 then Float.infinity
      else
        Stats.Chernoff.switch_threshold_seq ~n ~delta:cfg.Pib.delta
          ~test_index:i ~range
        /. float_of_int n
    in
    {
      samples = n;
      samples_total = Pib.samples_total t.pib;
      climbs = List.length (Pib.climbs t.pib);
      epsilon;
      delta = cfg.Pib.delta;
      finished = false;
    }
end

module Pib1_learner = struct
  type t = {
    mutable filter : Pib1.t option;  (* None: nothing left to contemplate *)
    mutable cur : Spec.dfs;
    mutable pending : Spec.dfs option;
    delta : float;
    mutable switched : bool;
    mutable seen : int;  (* m, surviving the filter's retirement *)
  }

  let name = "pib1"

  let create ?(delta = 0.05) start =
    (* Guard the first adjacent sibling swap the strategy offers; a
       strategy with no sibling pair has an empty 𝒯 and the filter is
       born finished. *)
    let filter =
      match Transform.all ~adjacent_only:true start with
      | [] -> None
      | transform :: _ -> Some (Pib1.create start ~transform ~delta)
    in
    { filter; cur = start; pending = None; delta; switched = false; seen = 0 }

  let observe t ctx outcome =
    ignore ctx;
    match t.filter with
    | None -> ()
    | Some f -> (
      Pib1.observe f outcome;
      let m, _, _ = Pib1.counts f in
      t.seen <- m;
      match Pib1.decision f with
      | `Switch ->
        t.cur <- Pib1.theta' f;
        t.pending <- Some t.cur;
        t.switched <- true;
        t.filter <- None
      | `Keep -> ())

  let current t = t.cur

  let conjecture t =
    let p = t.pending in
    t.pending <- None;
    p

  let finished t = t.filter = None
  let serialize t = Persist.dfs_to_string t.cur

  (* ε = Equation 3's threshold spread over the m samples; 0 once the
     filter has decided (the bound is then certified). *)
  let progress t =
    let epsilon =
      match t.filter with
      | None -> 0.0
      | Some f ->
        let m, _, _ = Pib1.counts f in
        if m = 0 then Float.infinity
        else Pib1.threshold f /. float_of_int m
    in
    {
      samples = t.seen;
      samples_total = t.seen;
      climbs = (if t.switched then 1 else 0);
      epsilon;
      delta = t.delta;
      finished = t.filter = None;
    }
end

(* Shared skeleton of the two PAO observers: per-arc counters against
   (scaled) sample targets; once every positive target is met — or the
   context cap passes — hand the frequency estimates to Υ_AOT and stop. *)
module Pao_common = struct
  type t = {
    graph : Graph.t;
    targets : int array;
    progress : int array;  (* the counter measured against [targets] *)
    successes : int array;
    attempts : int array;  (* denominators for p̂ *)
    max_contexts : int;
    epsilon : float;  (* the configured PAC target, for telemetry *)
    delta : float;
    mutable contexts : int;
    mutable cur : Spec.dfs;
    mutable pending : Spec.dfs option;
    mutable done_ : bool;
  }

  let scale_targets ~scale raw =
    Array.map
      (fun m ->
        if m = 0 then 0 else max 1 (int_of_float (ceil (float_of_int m *. scale))))
      raw

  let create ~raw_targets ~scale ~max_contexts ~epsilon ~delta start =
    let g = start.Spec.graph in
    let n = Graph.n_arcs g in
    {
      graph = g;
      targets = scale_targets ~scale raw_targets;
      progress = Array.make n 0;
      successes = Array.make n 0;
      attempts = Array.make n 0;
      max_contexts;
      epsilon;
      delta;
      contexts = 0;
      cur = start;
      pending = None;
      done_ = false;
    }

  let complete t =
    let ok = ref true in
    Array.iteri
      (fun i m -> if m > 0 && t.progress.(i) < m then ok := false)
      t.targets;
    !ok

  let conclude t =
    let n = Graph.n_arcs t.graph in
    let p =
      Array.init n (fun i ->
          if t.attempts.(i) > 0 then
            float_of_int t.successes.(i) /. float_of_int t.attempts.(i)
          else if (Graph.arc t.graph i).Graph.blockable then 0.5
          else 1.0)
    in
    let theta, _cost = Upsilon.aot (Bernoulli_model.make t.graph ~p) in
    t.cur <- theta;
    t.pending <- Some theta;
    t.done_ <- true

  let after_observation t =
    t.contexts <- t.contexts + 1;
    if complete t || t.contexts >= t.max_contexts then conclude t

  let conjecture t =
    let p = t.pending in
    t.pending <- None;
    p

  (* Achieved-so-far accuracy estimate: Hoeffding radii shrink as
     1/sqrt(samples), so an arc that has met fraction [n/m] of its
     (scaled) target supports roughly ε·sqrt(m/n); the worst arc
     dominates. +inf while any targeted arc is unsampled; never below
     the configured ε. *)
  let telemetry t =
    let worst = ref 1.0 and starved = ref false and any = ref false in
    Array.iteri
      (fun i m ->
        if m > 0 then begin
          any := true;
          if t.progress.(i) = 0 then starved := true
          else
            worst :=
              Float.max !worst (float_of_int m /. float_of_int t.progress.(i))
        end)
      t.targets;
    let epsilon =
      if not !any then t.epsilon
      else if !starved then Float.infinity
      else t.epsilon *. sqrt !worst
    in
    {
      samples = t.contexts;
      samples_total = t.contexts;
      climbs = (if t.done_ then 1 else 0);
      epsilon;
      delta = t.delta;
      finished = t.done_;
    }
end

module Pao_learner = struct
  type t = Pao_common.t

  let name = "pao"

  let create ?(epsilon = 0.25) ?(delta = 0.05) ?(scale = 0.01)
      ?(max_contexts = 10_000) start =
    let raw_targets = Pao.sample_targets start.Spec.graph ~epsilon ~delta in
    Pao_common.create ~raw_targets ~scale ~max_contexts ~epsilon ~delta start

  let observe (t : t) _ctx outcome =
    if not t.Pao_common.done_ then begin
      List.iter
        (fun { Exec.arc_id; unblocked } ->
          t.Pao_common.progress.(arc_id) <- t.Pao_common.progress.(arc_id) + 1;
          t.Pao_common.attempts.(arc_id) <- t.Pao_common.attempts.(arc_id) + 1;
          if unblocked then
            t.Pao_common.successes.(arc_id) <-
              t.Pao_common.successes.(arc_id) + 1)
        outcome.Exec.observations;
      Pao_common.after_observation t
    end

  let current (t : t) = t.Pao_common.cur
  let conjecture = Pao_common.conjecture
  let finished (t : t) = t.Pao_common.done_
  let serialize (t : t) = Persist.dfs_to_string t.Pao_common.cur
  let progress = Pao_common.telemetry
end

module Pao_adaptive_learner = struct
  type t = Pao_common.t

  let name = "pao-adaptive"

  let create ?(epsilon = 0.25) ?(delta = 0.05) ?(scale = 0.01)
      ?(max_contexts = 10_000) start =
    let raw_targets =
      Pao_adaptive.aim_targets start.Spec.graph ~epsilon ~delta
    in
    Pao_common.create ~raw_targets ~scale ~max_contexts ~epsilon ~delta start

  let observe (t : t) _ctx outcome =
    if not t.Pao_common.done_ then begin
      (* Theorem 3 counts aims, not samples: paying for an arc means its
         source was reached, i.e. the processor aimed at (and reached)
         the experiment. *)
      List.iter
        (fun arc_id ->
          t.Pao_common.progress.(arc_id) <- t.Pao_common.progress.(arc_id) + 1)
        outcome.Exec.attempted;
      List.iter
        (fun { Exec.arc_id; unblocked } ->
          t.Pao_common.attempts.(arc_id) <- t.Pao_common.attempts.(arc_id) + 1;
          if unblocked then
            t.Pao_common.successes.(arc_id) <-
              t.Pao_common.successes.(arc_id) + 1)
        outcome.Exec.observations;
      Pao_common.after_observation t
    end

  let current (t : t) = t.Pao_common.cur
  let conjecture = Pao_common.conjecture
  let finished (t : t) = t.Pao_common.done_
  let serialize (t : t) = Persist.dfs_to_string t.Pao_common.cur
  let progress = Pao_common.telemetry
end

module Palo_learner = struct
  type t = { palo : Palo.t; mutable pending : Spec.dfs option }

  let name = "palo"

  let create ?config start = { palo = Palo.create ?config start; pending = None }

  let observe t ctx outcome =
    match Palo.observe t.palo ctx outcome with
    | Some climb -> t.pending <- Some climb.Pib.to_strategy
    | None -> ()

  let current t = Palo.current t.palo

  let conjecture t =
    let p = t.pending in
    t.pending <- None;
    p

  let finished t =
    match Palo.status t.palo with Palo.Stopped _ -> true | Palo.Running -> false

  let serialize t = Persist.dfs_to_string (current t)
  let palo t = t.palo

  (* PALO's stopping rule certifies the configured ε; until it stops,
     that target is the only honest bound to report (its internal
     neighbour UCBs are in the same units but per-neighbour). *)
  let progress t =
    let cfg = Palo.config t.palo in
    {
      samples = Palo.samples_total t.palo;
      samples_total = Palo.samples_total t.palo;
      climbs = List.length (Palo.climbs t.palo);
      epsilon = cfg.Palo.epsilon;
      delta = cfg.Palo.delta;
      finished = (match Palo.status t.palo with
                 | Palo.Stopped _ -> true
                 | Palo.Running -> false);
    }
end

type kind = [ `Pib | `Pib1 | `Pao | `Pao_adaptive | `Palo ]

let all_kinds = [ `Pib; `Pib1; `Pao; `Pao_adaptive; `Palo ]

let kind_to_string = function
  | `Pib -> "pib"
  | `Pib1 -> "pib1"
  | `Pao -> "pao"
  | `Pao_adaptive -> "pao-adaptive"
  | `Palo -> "palo"

let kind_of_string = function
  | "pib" -> Some `Pib
  | "pib1" -> Some `Pib1
  | "pao" -> Some `Pao
  | "pao-adaptive" | "pao_adaptive" -> Some `Pao_adaptive
  | "palo" -> Some `Palo
  | _ -> None

type config = {
  pib : Pib.config;
  palo : Palo.config;
  pib1_delta : float;
  pao_epsilon : float;
  pao_delta : float;
  pao_scale : float;
  pao_max_contexts : int;
}

let default_config =
  {
    pib = Pib.default_config;
    palo = Palo.default_config;
    pib1_delta = 0.05;
    pao_epsilon = 0.25;
    pao_delta = 0.05;
    pao_scale = 0.01;
    pao_max_contexts = 10_000;
  }

(* Typed telemetry events, emitted through the hook installed with
   {!set_hook}. [Observed] fires after every observation and carries
   the bound-check reading (check_every defaults to 1, so each
   observation is a bound check); [Climbed] fires when the learner
   switched strategies internally (or finished); [Conjectured] fires
   when the consumer polls the switch out. *)
type event =
  | Observed of progress
  | Climbed of progress
  | Conjectured of progress

type t = {
  name : string;
  observe : Context.t -> Exec.outcome -> unit;
  current : unit -> Spec.dfs;
  conjecture : unit -> Spec.dfs option;
  finished : unit -> bool;
  serialize : unit -> string;
  progress : unit -> progress;
  hook : (event -> unit) option ref;
  reseed : Spec.dfs -> t;
}

let pack (type a) (module M : S with type t = a) ~reseed (st : a) =
  let hook = ref None in
  {
    name = M.name;
    observe =
      (fun ctx outcome ->
        (* The no-hook path pays one branch — progress readings (which
           allocate for PIB) happen only when someone listens. *)
        match !hook with
        | None -> M.observe st ctx outcome
        | Some emit ->
          let before = M.progress st in
          M.observe st ctx outcome;
          let after = M.progress st in
          emit (Observed after);
          if after.climbs > before.climbs || (after.finished && not before.finished)
          then emit (Climbed after));
    current = (fun () -> M.current st);
    conjecture =
      (fun () ->
        match M.conjecture st with
        | None -> None
        | Some d ->
          (match !hook with
          | Some emit -> emit (Conjectured (M.progress st))
          | None -> ());
          Some d);
    finished = (fun () -> M.finished st);
    serialize = (fun () -> M.serialize st);
    progress = (fun () -> M.progress st);
    hook;
    reseed;
  }

let rec create ?(config = default_config) kind start =
  let reseed d = create ~config kind d in
  match kind with
  | `Pib ->
    pack (module Pib_learner) ~reseed
      (Pib_learner.create ~config:config.pib start)
  | `Pib1 ->
    pack (module Pib1_learner) ~reseed
      (Pib1_learner.create ~delta:config.pib1_delta start)
  | `Pao ->
    pack (module Pao_learner) ~reseed
      (Pao_learner.create ~epsilon:config.pao_epsilon ~delta:config.pao_delta
         ~scale:config.pao_scale ~max_contexts:config.pao_max_contexts start)
  | `Pao_adaptive ->
    pack (module Pao_adaptive_learner) ~reseed
      (Pao_adaptive_learner.create ~epsilon:config.pao_epsilon
         ~delta:config.pao_delta ~scale:config.pao_scale
         ~max_contexts:config.pao_max_contexts start)
  | `Palo ->
    pack (module Palo_learner) ~reseed
      (Palo_learner.create ~config:config.palo start)

let name t = t.name
let observe t ctx outcome = t.observe ctx outcome
let current t = t.current ()
let conjecture t = t.conjecture ()
let finished t = t.finished ()
let serialize t = t.serialize ()
let progress t = t.progress ()
let set_hook t f = t.hook := Some f
let clear_hook t = t.hook := None
let reseed t d = t.reseed d
