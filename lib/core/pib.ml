open Infgraph
open Strategy

let log_src = Logs.Src.create "strategem.pib" ~doc:"PIB hill-climbing learner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  delta : float;
  moves : Moves.family;
  check_every : int;
  answers_required : int;
}

let default_config =
  { delta = 0.05; moves = Moves.All_swaps; check_every = 1; answers_required = 1 }

type climb = {
  step : int;
  samples : int;
  tests_charged : int;
  move : Moves.t;
  from_strategy : Spec.dfs;
  to_strategy : Spec.dfs;
  delta_sum : float;
  threshold : float;
}

type candidate = {
  mv : Moves.t;
  spec' : Spec.dfs;
  lambda : float;
  mutable sum : float;  (* running Δ̃[Θ_j, Θ', S] *)
}

type t = {
  cfg : config;
  mutable theta : Spec.dfs;
  mutable cands : candidate list;
  mutable n : int;           (* |S| for the current strategy *)
  mutable total : int;
  mutable since_check : int;
  seq : Stats.Sequential.t;
  mutable history : climb list; (* newest first *)
}

let make_candidates cfg theta =
  Moves.neighbors cfg.moves theta
  |> List.map (fun (mv, spec') ->
         { mv; spec'; lambda = Moves.lambda theta mv; sum = 0. })

let create ?(config = default_config) theta =
  if not (config.delta > 0. && config.delta < 1.) then
    invalid_arg "Pib.create: delta must lie in (0,1)";
  if config.check_every < 1 then
    invalid_arg "Pib.create: check_every must be at least 1";
  if config.answers_required < 1 then
    invalid_arg "Pib.create: answers_required must be at least 1";
  if not (Graph.simple_disjunctive theta.Spec.graph) then
    invalid_arg "Pib.create: requires a simple disjunctive graph";
  {
    cfg = config;
    theta;
    cands = make_candidates config theta;
    n = 0;
    total = 0;
    since_check = 0;
    seq = Stats.Sequential.create ~delta:config.delta;
    history = [];
  }

let current t = t.theta
let config t = t.cfg
let climbs t = List.rev t.history
let samples_current t = t.n
let samples_total t = t.total
let tests_used t = Stats.Sequential.tests_used t.seq

let candidates t = List.map (fun c -> (c.mv, c.sum, c.lambda)) t.cands

let try_climb t =
  if t.cands = [] then None
  else begin
    let i =
      Stats.Sequential.advance t.seq ~count:(List.length t.cands)
    in
    let passing =
      List.filter_map
        (fun c ->
          let threshold =
            Stats.Chernoff.switch_threshold_seq ~n:t.n ~delta:t.cfg.delta
              ~test_index:i ~range:c.lambda
          in
          if c.sum >= threshold && c.sum > 0. then Some (c, threshold)
          else None)
        t.cands
    in
    match passing with
    | [] -> None
    | _ ->
      (* Climb to the candidate with the largest margin over its threshold. *)
      let best, threshold =
        List.fold_left
          (fun (bc, bt) (c, th) ->
            if c.sum -. th > bc.sum -. bt then (c, th) else (bc, bt))
          (List.hd passing) (List.tl passing)
      in
      let climb =
        {
          step = List.length t.history + 1;
          samples = t.n;
          tests_charged = i;
          move = best.mv;
          from_strategy = t.theta;
          to_strategy = best.spec';
          delta_sum = best.sum;
          threshold;
        }
      in
      t.theta <- best.spec';
      t.cands <- make_candidates t.cfg t.theta;
      t.n <- 0;
      t.history <- climb :: t.history;
      Log.info (fun m ->
          m "climb %d after %d samples (test %d): delta-sum %.3f >= %.3f"
            climb.step climb.samples climb.tests_charged climb.delta_sum
            climb.threshold);
      Some climb
  end

let observe t outcome =
  List.iter
    (fun c ->
      c.sum <-
        c.sum
        +. Delta.underestimate ~k:t.cfg.answers_required
             ~theta:(Spec.Dfs t.theta) ~theta':(Spec.Dfs c.spec') outcome)
    t.cands;
  t.n <- t.n + 1;
  t.total <- t.total + 1;
  t.since_check <- t.since_check + 1;
  if t.since_check >= t.cfg.check_every then begin
    t.since_check <- 0;
    try_climb t
  end
  else None

let step t ctx =
  let outcome = Exec.first_k t.cfg.answers_required (Spec.Dfs t.theta) ctx in
  let climb = observe t outcome in
  (outcome, climb)

let run t oracle ~n =
  if Oracle.graph oracle != t.theta.Spec.graph then
    invalid_arg "Pib.run: oracle is for a different graph";
  let acc = ref [] in
  for _ = 1 to n do
    match step t (Oracle.next oracle) with
    | _, Some climb -> acc := climb :: !acc
    | _, None -> ()
  done;
  List.rev !acc
