open Infgraph
open Strategy

let probabilities g db =
  let counts =
    List.map
      (fun a ->
        match a.Graph.pattern with
        | Some pattern ->
          ( a.Graph.arc_id,
            Datalog.Database.count_pred_id db
              (Datalog.Symbol.id pattern.Datalog.Atom.pred) )
        | None ->
          invalid_arg
            (Printf.sprintf "Smith.probabilities: retrieval %s has no pattern"
               a.Graph.label))
      (Graph.retrievals g)
  in
  let max_count = List.fold_left (fun m (_, c) -> max m c) 0 counts in
  let p = Array.make (Graph.n_arcs g) 1.0 in
  List.iter
    (fun (id, c) ->
      p.(id) <-
        (if max_count = 0 then 0.5
         else float_of_int c /. float_of_int max_count))
    counts;
  (* Blockable reductions: Smith's heuristic has no opinion; use 0.5. *)
  List.iter
    (fun a ->
      if a.Graph.kind = Graph.Reduction && a.Graph.blockable then
        p.(a.Graph.arc_id) <- 0.5)
    (Graph.arcs g);
  Bernoulli_model.make g ~p

let strategy g db = fst (Upsilon.aot (probabilities g db))
