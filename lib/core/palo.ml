open Strategy

let log_src = Logs.Src.create "strategem.palo" ~doc:"PALO learner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  delta : float;
  epsilon : float;
  moves : Moves.family;
  check_every : int;
  answers_required : int;
}

let default_config =
  {
    delta = 0.05;
    epsilon = 0.1;
    moves = Moves.All_swaps;
    check_every = 1;
    answers_required = 1;
  }

type status =
  | Running
  | Stopped of { at_samples : int; total_samples : int }

type candidate = {
  mv : Moves.t;
  spec' : Spec.dfs;
  lambda : float;
  mutable sum : float; (* exact Σ Δ[Θ, Θ', I] over the current sample set *)
}

type t = {
  cfg : config;
  mutable theta : Spec.dfs;
  mutable cands : candidate list;
  mutable n : int;
  mutable total : int;
  mutable paired : int;
  mutable since_check : int;
  seq : Stats.Sequential.t;
  mutable history : Pib.climb list;
  mutable status : status;
}

let make_candidates cfg theta =
  Moves.neighbors cfg.moves theta
  |> List.map (fun (mv, spec') ->
         { mv; spec'; lambda = Moves.lambda theta mv; sum = 0. })

let create ?(config = default_config) theta =
  if not (config.delta > 0. && config.delta < 1.) then
    invalid_arg "Palo.create: delta must lie in (0,1)";
  if config.epsilon <= 0. then
    invalid_arg "Palo.create: epsilon must be positive";
  if config.check_every < 1 then
    invalid_arg "Palo.create: check_every must be at least 1";
  if config.answers_required < 1 then
    invalid_arg "Palo.create: answers_required must be at least 1";
  {
    cfg = config;
    theta;
    cands = make_candidates config theta;
    n = 0;
    total = 0;
    paired = 0;
    since_check = 0;
    seq = Stats.Sequential.create ~delta:config.delta;
    history = [];
    status = Running;
  }

let current t = t.theta
let config t = t.cfg
let status t = t.status
let climbs t = List.rev t.history
let samples_total t = t.total
let paired_executions t = t.paired

let check t =
  if t.cands = [] then begin
    (* No neighbours at all: trivially locally optimal. *)
    t.status <- Stopped { at_samples = t.n; total_samples = t.total };
    None
  end
  else begin
    (* One climb test and one stop test per neighbour. *)
    let i = Stats.Sequential.advance t.seq ~count:(2 * List.length t.cands) in
    let threshold_for lambda =
      Stats.Chernoff.switch_threshold_seq ~n:t.n ~delta:t.cfg.delta
        ~test_index:i ~range:lambda
    in
    let passing =
      List.filter_map
        (fun c ->
          let th = threshold_for c.lambda in
          if c.sum >= th && c.sum > 0. then Some (c, th) else None)
        t.cands
    in
    match passing with
    | _ :: _ ->
      let best, threshold =
        List.fold_left
          (fun (bc, bt) (c, th) ->
            if c.sum -. th > bc.sum -. bt then (c, th) else (bc, bt))
          (List.hd passing) (List.tl passing)
      in
      let climb =
        {
          Pib.step = List.length t.history + 1;
          samples = t.n;
          tests_charged = i;
          move = best.mv;
          from_strategy = t.theta;
          to_strategy = best.spec';
          delta_sum = best.sum;
          threshold;
        }
      in
      t.theta <- best.spec';
      t.cands <- make_candidates t.cfg t.theta;
      t.n <- 0;
      t.history <- climb :: t.history;
      Some climb
    | [] ->
      (* Stop when every neighbour's upper confidence bound on
         D[Θ,Θ'] = C[Θ] − C[Θ'] lies below ε. *)
      if t.n > 0 then begin
        let all_bounded =
          List.for_all
            (fun c ->
              c.sum +. threshold_for c.lambda
              <= t.cfg.epsilon *. float_of_int t.n)
            t.cands
        in
        if all_bounded then begin
          t.status <- Stopped { at_samples = t.n; total_samples = t.total };
          Log.info (fun m ->
              m "stopped: eps-local optimum after %d samples (%d climbs)"
                t.total (List.length t.history))
        end
      end;
      None
  end

let observe t ctx outcome =
  match t.status with
  | Stopped _ -> None
  | Running ->
  List.iter
    (fun c ->
      let outcome' = Exec.first_k t.cfg.answers_required (Spec.Dfs c.spec') ctx in
      t.paired <- t.paired + 1;
      c.sum <- c.sum +. (outcome.Exec.cost -. outcome'.Exec.cost))
    t.cands;
  t.n <- t.n + 1;
  t.total <- t.total + 1;
  t.since_check <- t.since_check + 1;
  if t.since_check >= t.cfg.check_every then begin
    t.since_check <- 0;
    check t
  end
  else None

let step t ctx =
  match t.status with
  | Stopped _ -> (None, None)
  | Running ->
    let outcome = Exec.first_k t.cfg.answers_required (Spec.Dfs t.theta) ctx in
    let climb = observe t ctx outcome in
    (Some outcome, climb)

let run t oracle ~max_contexts =
  let rec loop remaining =
    if remaining <= 0 then t.status
    else
      match t.status with
      | Stopped _ -> t.status
      | Running ->
        ignore (step t (Oracle.next oracle));
        loop (remaining - 1)
  in
  loop max_contexts
