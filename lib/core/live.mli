(** The live learning query processor — the Section 3.1 / Figure 4 system
    end to end, on the {e real} SLD engine.

    [Live] owns a rule base, builds the inference graph for a query form
    once, and then answers concrete queries with {!Datalog.Sld}, ordering
    candidate rules according to its current strategy (the strategy's
    child order at each goal node becomes the SLD rule order). After each
    answer it derives the query's context, feeds its {!Learner} (PIB by
    default, any {!Learner.kind} on request), and adopts any conjecture —
    so later queries really run faster. This is the "smart filter inside
    the host optimizer" deployment the paper describes for DedGin*-style
    systems.

    The per-predicate rule order is read off the strategy at the
    shallowest graph node for that predicate (in a tree-shaped unfolding a
    predicate can appear at several nodes; they then share one order —
    documented limitation, irrelevant for non-recursive rule bases whose
    predicates occur once). *)

type t

val create :
  ?learner:Learner.kind ->
  ?config:Learner.config ->
  rulebase:Datalog.Rulebase.t ->
  query_form:Datalog.Atom.t ->
  unit ->
  t

val graph : t -> Infgraph.Graph.t
val strategy : t -> Strategy.Spec.dfs

(** The processor's learner (packed behind the unified API). *)
val learner : t -> Learner.t

val learner_name : t -> string

(** Strategy switches adopted since creation (or since the last
    {!set_strategy}). *)
val climbs : t -> int

(** Adopt a strategy (e.g. one reloaded from a snapshot): the learner is
    re-seeded at it with the same configuration and the SLD rule orders
    are rederived. The strategy must have been built on (or parsed
    against) this processor's graph — raises [Invalid_argument]
    otherwise. *)
val set_strategy : t -> Strategy.Spec.dfs -> unit

(** Install a learner telemetry hook (see {!Learner.event}). Survives
    {!set_strategy}'s reseeding: the hook is re-installed on the fresh
    learner. The hook runs synchronously inside {!answer} — keep it
    cheap. *)
val on_event : t -> (Learner.event -> unit) -> unit

type answer = {
  result : Datalog.Subst.t option;  (** first answer, if any *)
  stats : Datalog.Sld.stats;        (** the SLD engine's work counters *)
  cost : float;
      (** paper cost c(Θ, I) of the mirrored strategy execution — what
          the learner's statistics are built from, and what a trace's
          [exec] span must sum to *)
  switched : bool;                  (** did this query trigger a switch? *)
  cached : bool;
      (** answer served from a cache ({!answer_cached}); [stats] is then
          all-zero — no SLD ran *)
  derived : bool;
      (** cached answer obtained by filtering a more general entry's
          answer set (subsumption), not an exact key *)
  enumerated : Datalog.Sld.enum option;
      (** when {!answer} ran with [enumerate], the answer set pulled past
          the first success node (for cache fills) *)
}

(** Answer one query (an instance of the query form) against a database,
    with the current learned rule order; learn from it.

    With [tracer], the whole answer is recorded as a span tree: a root
    [query] span (or the supplied [parent]) containing an [sld] phase
    (the resolution steps), an [exec] phase (the mirrored strategy
    execution, arc by arc — its total paper cost equals [cost]), and a
    [learn] phase (the learner update; a switch appears as a [climb]
    event). Defaults to {!Trace.null} — free.

    With [memo], ground subgoals resolve through the shared
    {!Datalog.Sld.Memo} table (the rest of the pipeline is unchanged).

    With [enumerate > 0], the derivation is additionally pulled past the
    first success node for up to that many distinct answers (reported in
    [enumerated]); the answer, [stats], and everything the learner sees
    are unchanged — only the tail work in [enumerated.extra_*] is extra.

    Raises [Invalid_argument] if the query does not match the form. *)
val answer :
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  ?memo:Datalog.Sld.Memo.t ->
  ?enumerate:int ->
  t ->
  db:Datalog.Database.t ->
  Datalog.Atom.t ->
  answer

(** Answer a query whose [result] was produced elsewhere (the serving
    layer's answer cache): skips SLD entirely but still runs the full
    learning pipeline — context derivation, mirrored strategy execution
    (so [cost] is the true current c(Θ, I)) and learner observation —
    leaving the learner's trajectory identical to the uncached run. The
    span tree has no [sld] phase and [stats] is all-zero. [derived] marks
    the answer as a subsumption-derived hit (pure bookkeeping — the
    learning pipeline is identical either way, which is what keeps
    trajectories byte-stable with subsumption on or off). *)
val answer_cached :
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  ?derived:bool ->
  t ->
  db:Datalog.Database.t ->
  result:Datalog.Subst.t option ->
  Datalog.Atom.t ->
  answer

(** Queries answered so far. *)
val queries : t -> int

(** Total SLD work so far: (reductions, retrievals). *)
val work : t -> int * int
