(** The live learning query processor — the Section 3.1 / Figure 4 system
    end to end, on the {e real} SLD engine.

    [Live] owns a rule base, builds the inference graph for a query form
    once, and then answers concrete queries with {!Datalog.Sld}, ordering
    candidate rules according to its current strategy (the strategy's
    child order at each goal node becomes the SLD rule order). After each
    answer it derives the query's context, feeds PIB, and adopts any climb
    — so later queries really run faster. This is the "smart filter inside
    the host optimizer" deployment the paper describes for DedGin*-style
    systems.

    The per-predicate rule order is read off the strategy at the
    shallowest graph node for that predicate (in a tree-shaped unfolding a
    predicate can appear at several nodes; they then share one order —
    documented limitation, irrelevant for non-recursive rule bases whose
    predicates occur once). *)

type t

val create :
  ?config:Pib.config ->
  rulebase:Datalog.Rulebase.t ->
  query_form:Datalog.Atom.t ->
  unit ->
  t

val graph : t -> Infgraph.Graph.t
val strategy : t -> Strategy.Spec.dfs
val pib : t -> Pib.t

(** Climbs performed since creation (or since the last {!set_strategy}). *)
val climbs : t -> int

(** Adopt a strategy (e.g. one reloaded from a snapshot): the learner is
    re-seeded at it with the same configuration and the SLD rule orders
    are rederived. The strategy must have been built on (or parsed
    against) this processor's graph — raises [Invalid_argument]
    otherwise. *)
val set_strategy : t -> Strategy.Spec.dfs -> unit

type answer = {
  result : Datalog.Subst.t option;  (** first answer, if any *)
  stats : Datalog.Sld.stats;        (** the SLD engine's work counters *)
  switched : bool;                  (** did this query trigger a climb? *)
}

(** Answer one query (an instance of the query form) against a database,
    with the current learned rule order; learn from it.
    Raises [Invalid_argument] if the query does not match the form. *)
val answer : t -> db:Datalog.Database.t -> Datalog.Atom.t -> answer

(** Queries answered so far. *)
val queries : t -> int

(** Total SLD work so far: (reductions, retrievals). *)
val work : t -> int * int
