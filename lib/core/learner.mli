(** The unified learner API.

    Every learner in this repo — PIB's anytime hill-climber, the PIB₁
    one-shot filter, PAO's sample-then-optimize PAC learner, its
    general-graph adaptive variant, and PALO's terminating climber — fits
    one observational loop (Figure 4): watch the query processor execute
    the current strategy, occasionally conjecture a better one. This
    module names that contract once ({!S}), makes the five learners
    conform, and packs them behind a single first-class value ({!t}) so
    consumers ({!Live}, [Serve.Registry], the daemon's [--learner] flag)
    select a learner by {!kind} instead of hard-coding PIB.

    Protocol: after each query, call {!observe} with the context and the
    execution outcome of the {e current} strategy, then poll
    {!conjecture}; [Some θ'] means the learner has switched and the QP
    must adopt θ' (a conjecture is consumed — polling again returns
    [None] until the next switch). {!current} always reflects the
    learner's present strategy. A {!finished} learner ignores further
    observations. *)

open Infgraph
open Strategy

(** {1 Convergence telemetry}

    A point-in-time reading of the learner's statistical machinery,
    surfaced at runtime as the [strategem_learner_*] gauges. [epsilon]
    is the learner's own accuracy bound: PIB reports Equation 6's
    per-sample threshold at the current test index (the cost resolution
    below which it cannot yet distinguish neighbours), PIB₁ Equation 3's
    threshold over [m] (0 once decided), PAO the configured ε inflated
    by the worst arc's remaining (scaled) sample-target shortfall, and
    PALO its configured ε target. See docs/OBSERVABILITY.md. *)
type progress = {
  samples : int;
      (** current sample set [|S|], for learners that keep one *)
  samples_total : int;
  climbs : int;
  epsilon : float;  (** [+inf] before any evidence *)
  delta : float;  (** the confidence budget *)
  finished : bool;
}

(** What a learner must provide. [conjecture] consumes: it returns a
    newly adopted strategy at most once per switch. *)
module type S = sig
  type t

  val name : string

  (** Feed one (context, outcome) pair of the current strategy's
      execution. No-op once {!finished}. *)
  val observe : t -> Context.t -> Exec.outcome -> unit

  val current : t -> Spec.dfs
  val conjecture : t -> Spec.dfs option
  val finished : t -> bool

  (** The current strategy in {!Strategy.Persist} text form (loadable
      with [Persist.dfs_of_string]); what snapshots store. *)
  val serialize : t -> string

  val progress : t -> progress
end

(** PIB (Section 3.2): never finishes, climbs forever. *)
module Pib_learner : sig
  include S

  val create : ?config:Pib.config -> Spec.dfs -> t

  (** The underlying climber (counters, climb log). *)
  val pib : t -> Pib.t
end

(** PIB₁ (Section 3.1): guards the first adjacent sibling swap of the
    start strategy; finishes as soon as Equation 3 approves it (or
    immediately, if the strategy has no sibling pair to contemplate). *)
module Pib1_learner : sig
  include S

  val create : ?delta:float -> Spec.dfs -> t
end

(** PAO (Section 4) as an unobtrusive observer: counts retrieval
    attempts/successes from outcomes until every retrieval has met its
    (scaled) Equation 7 target — or [max_contexts] passes — then
    conjectures Υ_AOT of the estimates and finishes. Unlike {!Pao.run}
    it never steers sampling; starvation is the price of passivity,
    which the [max_contexts] cap bounds. *)
module Pao_learner : sig
  include S

  val create :
    ?epsilon:float ->
    ?delta:float ->
    ?scale:float ->
    ?max_contexts:int ->
    Spec.dfs ->
    t
end

(** {!Pao_adaptive} (Section 4.1) as an observer: Equation 8 aim
    targets, aims counted from the arcs each outcome paid for. *)
module Pao_adaptive_learner : sig
  include S

  val create :
    ?epsilon:float ->
    ?delta:float ->
    ?scale:float ->
    ?max_contexts:int ->
    Spec.dfs ->
    t
end

(** PALO ([CG91]): climbs until ε-locally optimal, then finishes. *)
module Palo_learner : sig
  include S

  val create : ?config:Palo.config -> Spec.dfs -> t

  (** The underlying learner (status, paired-execution count). *)
  val palo : t -> Palo.t
end

(** {1 Dynamic selection} *)

type kind = [ `Pib | `Pib1 | `Pao | `Pao_adaptive | `Palo ]

val all_kinds : kind list
val kind_to_string : kind -> string

(** Inverse of {!kind_to_string} ("pib", "pib1", "pao", "pao-adaptive",
    "palo"). *)
val kind_of_string : string -> kind option

type config = {
  pib : Pib.config;
  palo : Palo.config;
  pib1_delta : float;
  pao_epsilon : float;
  pao_delta : float;
  pao_scale : float;  (** Equation 7/8 target multiplier *)
  pao_max_contexts : int;
}

val default_config : config

(** A packed learner: any conforming module behind one value. *)
type t

val create : ?config:config -> kind -> Spec.dfs -> t

(** Pack a custom conforming module (the five built-ins go through
    {!create}). [reseed] rebuilds the learner at a new start strategy
    (used by [set_strategy] after a snapshot reload). *)
val pack :
  (module S with type t = 'a) -> reseed:(Spec.dfs -> t) -> 'a -> t

val name : t -> string

(** Feed one (context, outcome) pair; emits {!Observed} (and possibly
    {!Climbed}) through the hook, if one is installed. *)
val observe : t -> Context.t -> Exec.outcome -> unit

val current : t -> Spec.dfs

(** Poll for a switch; emits {!Conjectured} when it returns [Some]. *)
val conjecture : t -> Spec.dfs option

val finished : t -> bool
val serialize : t -> string
val progress : t -> progress

(** {1 Telemetry events}

    [Observed] fires after every observation with the bound-check
    reading ([check_every] defaults to 1, so every observation is a
    bound check); [Climbed] when the learner switched strategies
    internally (or finished); [Conjectured] when the consumer polls the
    switch out. The hook runs synchronously on the observing thread —
    keep it cheap. {!reseed} returns a learner {e without} a hook;
    re-install after reseeding (as {!Live.on_event} does). *)
type event =
  | Observed of progress
  | Climbed of progress
  | Conjectured of progress

val set_hook : t -> (event -> unit) -> unit
val clear_hook : t -> unit

(** A fresh learner of the same kind and configuration, started at the
    given strategy. *)
val reseed : t -> Spec.dfs -> t
