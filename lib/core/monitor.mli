(** The Figure 4 architecture: an unobtrusive learner wrapped around a
    query processor.

    The query processor keeps answering queries with its current strategy;
    a learner watches each execution and occasionally tells the QP to
    switch strategies. [Monitor] is the glue: it owns the current
    strategy, routes every answered context to the learner, applies
    proposals, and keeps a cost log so callers can plot anytime behaviour
    (experiment E4). *)

open Infgraph
open Strategy

(** What a pluggable learner must provide. *)
type learner = {
  observe : Spec.dfs -> Context.t -> Exec.outcome -> unit;
      (** called after every query the QP answers, with the context it
          was answered in *)
  propose : unit -> Spec.dfs option;
      (** called after [observe]; [Some θ'] switches the QP *)
  finished : unit -> bool;
      (** a finished learner is no longer consulted *)
}

(** A learner that never proposes anything (pure monitoring). *)
val null_learner : learner

(** Adapters. *)
val of_pib : Pib.t -> learner
val of_palo : Palo.t -> learner

(** Any learner behind the unified {!Learner} API. *)
val of_learner : Learner.t -> learner

type t

val create : Spec.dfs -> learner -> t
val strategy : t -> Spec.dfs

(** Answer one context with the current strategy; feed the learner; apply
    any proposal. Returns the outcome and whether a switch happened.
    With [tracer], the execution is recorded as an [exec] span under
    [parent] whose total paper cost equals the outcome's [cost] — the
    consistency invariant the trace tests check. *)
val answer :
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  t ->
  Context.t ->
  Exec.outcome * bool

(** Answer [n] contexts from an oracle. *)
val serve : t -> Oracle.t -> n:int -> unit

(** Queries answered so far. *)
val queries : t -> int

(** Cumulative execution cost over all answered queries. *)
val total_cost : t -> float

(** (query index, strategy) at each switch, oldest first. *)
val switches : t -> (int * Spec.dfs) list
