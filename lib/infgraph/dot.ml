let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "inference_graph") ?(highlight = []) g =
  let hot arc_id = List.mem arc_id highlight in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  (* Nodes touched by a highlighted arc glow with it. *)
  let hot_nodes =
    List.concat_map
      (fun a ->
        if hot a.Graph.arc_id then [ a.Graph.src; a.Graph.dst ] else [])
      (Graph.arcs g)
  in
  List.iter
    (fun n ->
      let shape = if n.Graph.success then "box" else "ellipse" in
      let extra =
        if List.mem n.Graph.node_id hot_nodes then ", color=red" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" n.Graph.node_id
           (escape n.Graph.name) shape extra))
    (Graph.nodes g);
  List.iter
    (fun a ->
      let style =
        match (a.Graph.kind, a.Graph.blockable) with
        | Graph.Retrieval, _ -> "dashed"
        | Graph.Reduction, true -> "dotted"
        | Graph.Reduction, false -> "solid"
      in
      let extra =
        if hot a.Graph.arc_id then ", color=red, penwidth=2" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s (%g)\", style=%s%s];\n"
           a.Graph.src a.Graph.dst (escape a.Graph.label) a.Graph.cost style
           extra))
    (Graph.arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_channel ?name ?highlight oc g =
  output_string oc (to_string ?name ?highlight g)

let to_file ?name ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?name ?highlight oc g)
