(** Graphviz export — regenerates the paper's Figure 1 / Figure 2 drawings.

    Success nodes are drawn as boxes (as in the paper); retrieval arcs are
    dashed; blockable reduction arcs ("experiments") are dotted.

    [highlight] paints the named arcs (and the nodes they touch) red —
    [strategem explain] uses it to mark the arcs a traced query actually
    paid for. Unknown ids are ignored. *)

val to_string : ?name:string -> ?highlight:int list -> Graph.t -> string

val to_channel :
  ?name:string -> ?highlight:int list -> out_channel -> Graph.t -> unit

val to_file :
  ?name:string -> ?highlight:int list -> string -> Graph.t -> unit
