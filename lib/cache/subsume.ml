module D = Datalog

(* Adornment of an atom as a bitmask of bound (constant) positions: bit i
   set iff argument i is `B. A general key can subsume a query only if its
   bound set is a subset of the query's, so subset-mask buckets are an
   exact pre-filter for the lattice walk. Arities wider than an int's bits
   are not indexed (no such predicate exists in practice). *)
let bound_mask (a : D.Atom.t) =
  let mask, _ =
    List.fold_left
      (fun (m, i) ad ->
        ((match ad with `B -> m lor (1 lsl i) | `F -> m), i + 1))
      (0, 0) (D.Atom.adornment a)
  in
  mask

let popcount m =
  let rec go n m = if m = 0 then n else go (n + (m land 1)) (m lsr 1) in
  go 0 m

type t = {
  lock : Mutex.t;
  (* (pred id, arity) -> registered keys with their bound masks. Buckets
     are small (one entry per cached adornment-variant of the predicate);
     a list beats a second level of hashing. *)
  tbl : (int * int, (int * D.Atom.t) list ref) Hashtbl.t;
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 16 }

let slot (a : D.Atom.t) = (D.Symbol.id a.D.Atom.pred, D.Atom.arity a)

let max_indexed_arity = Sys.int_size - 2

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t key =
  if D.Atom.arity key <= max_indexed_arity then
    with_lock t (fun () ->
        let bucket =
          match Hashtbl.find_opt t.tbl (slot key) with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.add t.tbl (slot key) b;
            b
        in
        if not (List.exists (fun (_, k) -> D.Atom.equal k key) !bucket) then
          bucket := (bound_mask key, key) :: !bucket)

let remove t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl (slot key) with
      | None -> ()
      | Some b -> b := List.filter (fun (_, k) -> not (D.Atom.equal k key)) !b)

let length t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.tbl 0)

let candidates t ?exclude q =
  let qmask = bound_mask q in
  let cands =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl (slot q) with
        | None -> []
        | Some b ->
          List.filter
            (fun (m, k) ->
              m land qmask = m
              && not
                   (match exclude with
                   | Some e -> D.Atom.equal k e
                   | None -> false))
            !b)
  in
  (* Most-specific-first: scanning the most-bound generalization first
     keeps the filtered row scan as selective as possible. *)
  List.stable_sort
    (fun (m1, _) (m2, _) -> Int.compare (popcount m2) (popcount m1))
    cands
  |> List.map snd

let theta_subsumes ~general (s : D.Atom.t) =
  let g = general in
  if
    D.Symbol.id g.D.Atom.pred <> D.Symbol.id s.D.Atom.pred
    || D.Atom.arity g <> D.Atom.arity s
  then None
  else
    let rec go env gs ss =
      match (gs, ss) with
      | [], [] -> Some env
      | gt :: gs, st :: ss -> (
        match gt with
        | D.Term.Const _ -> if D.Term.equal gt st then go env gs ss else None
        | D.Term.Var v -> (
          let bound =
            List.find_opt (fun (v', _) -> D.Term.equal_var v v') env
          in
          match bound with
          | Some (_, t) -> if D.Term.equal t st then go env gs ss else None
          | None -> go ((v, st) :: env) gs ss))
      | _ -> None
    in
    go [] g.D.Atom.args s.D.Atom.args
    |> Option.map
         (List.fold_left
            (fun acc (v, t) -> D.Subst.bind v t acc)
            D.Subst.empty)

let instantiate (general : D.Atom.t) row =
  let args =
    List.map
      (fun t ->
        match t with
        | D.Term.Const _ -> t
        | D.Term.Var v -> (
          match Key.index_of_canonical v with
          | Some i -> (
            match List.assoc_opt i row with Some tm -> tm | None -> t)
          | None -> t))
      general.D.Atom.args
  in
  { general with D.Atom.args }

let filter_row ~general ~row (q : D.Atom.t) =
  match D.Subst.unify_atoms (instantiate general row) q D.Subst.empty with
  | None -> None
  | Some s ->
    (* Rebase onto [q]'s own variables. A query variable resolving to a
       constant is bound to it; one resolving to another query variable
       keeps that var-to-var link; ones resolving to the same leftover
       canonical variable are equal-but-unbound — link them to the first
       as representative, like SLD's answer restriction would. *)
    let reps = ref [] in
    let out =
      List.fold_left
        (fun acc v ->
          match D.Subst.apply s (D.Term.Var v) with
          | D.Term.Const _ as c -> D.Subst.bind v c acc
          | D.Term.Var w when D.Term.equal_var w v -> acc
          | D.Term.Var w -> (
            match Key.index_of_canonical w with
            | None -> D.Subst.bind v (D.Term.Var w) acc
            | Some _ -> (
              match
                List.find_opt (fun (w', _) -> D.Term.equal_var w w') !reps
              with
              | Some (_, r) -> D.Subst.bind v (D.Term.Var r) acc
              | None ->
                reps := (w, v) :: !reps;
                acc)))
        D.Subst.empty (D.Atom.vars q)
    in
    Some out
