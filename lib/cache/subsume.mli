(** Per-predicate subsumption index over cached query keys.

    The answer cache ({!Answers}) hits only on alpha-variant keys. This
    index recovers the rest of the specialization lattice: a probe for
    [p(a, Y)] that misses its exact key can find the cached, strictly more
    general [p(X, Y)] and answer by filtering its answer set. Keys are
    bucketed per (predicate, arity) by their adornment
    ({!Datalog.Adorn.adornment} — the bound/free pattern), encoded as a
    bitmask of bound positions: a key can only subsume queries whose bound
    set is a superset of its own, so a probe scans just the buckets whose
    mask is a subset of the query's, most-specific (most bound) first.

    Terms are function-free (Datalog), so θ-subsumption degenerates to a
    one-pass positional check: constants must match exactly and each
    general-side variable must map to one consistent term. All operations
    are thread-safe; membership maintenance is the caller's job (the cache
    removes keys lazily when it drops the backing entry). *)

type t

val create : unit -> t

(** [add t key] registers a cached key (idempotent). Callers register keys
    with at least one variable — a ground key can subsume only itself,
    which the exact lookup already covers. *)
val add : t -> Datalog.Atom.t -> unit

val remove : t -> Datalog.Atom.t -> unit

(** Registered keys (for introspection / tests). *)
val length : t -> int

(** [candidates t ?exclude q] — registered keys whose adornment could
    subsume [q] (bound positions ⊆ [q]'s), most-specific-first, minus
    [exclude] (the probe's own exact key). Candidates still need the
    {!theta_subsumes} check; the mask test is only a pre-filter. *)
val candidates : t -> ?exclude:Datalog.Atom.t -> Datalog.Atom.t -> Datalog.Atom.t list

(** [theta_subsumes ~general s] — the substitution [σ] with [general σ = s],
    if one exists. Function-free θ-subsumption: constants must coincide
    positionally and repeated general-side variables must map to equal
    terms ([p(X, X)] subsumes [p(a, a)] but not [p(a, b)]). *)
val theta_subsumes :
  general:Datalog.Atom.t -> Datalog.Atom.t -> Datalog.Subst.t option

(** [filter_row ~general ~row q] — the answer [q] inherits from one stored
    answer row of [general], if that row matches. [row] is the row in
    [general]'s canonical-variable space ({!Key}); the result substitution
    is expressed on [q]'s own variables (query variables that the row
    leaves equal-but-unbound come back as var-to-var bindings onto one
    representative, mirroring what direct SLD would report). *)
val filter_row :
  general:Datalog.Atom.t ->
  row:(int * Datalog.Term.t) list ->
  Datalog.Atom.t ->
  Datalog.Subst.t option

(** [instantiate general row] — [general] with its canonical variables
    replaced by the row's terms (unbound positions stay variables). Used
    to materialize ground answer instances for memo seeding. *)
val instantiate :
  Datalog.Atom.t -> (int * Datalog.Term.t) list -> Datalog.Atom.t
