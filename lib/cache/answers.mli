(** The answer cache: canonicalized query atom -> first answer + fill cost.

    Entries are keyed by {!Key.of_atom}, so alpha-equivalent queries share
    one entry. Each entry stores the answer substitution rebased into
    canonical variable space, whether the query was answered at all, the
    SLD work the fill paid (reductions / retrievals), and the paper-cost
    [c(Theta, I)] observed at fill time — the serving layer re-feeds that
    cost to the learner so cached traffic leaves the cost distribution the
    learner sees unchanged.

    Validity is tied to one database state: entries record
    {!Datalog.Database.token} and {!Datalog.Database.generation} at fill
    time and are dropped lazily on lookup when either differs ("ASSERT"-
    style mutation bumps the generation). Only non-truncated results should
    be stored (callers enforce this): a depth-truncated "no answer" is
    "unknown", not "no".

    All operations are thread-safe. *)

type t

(** A successful lookup. [result] is rebased onto the querying atom's own
    variables. *)
type hit = {
  result : Datalog.Subst.t option;
  reductions : int;  (** SLD reductions the fill paid *)
  retrievals : int;  (** SLD retrievals the fill paid *)
  cost : float;  (** paper-cost c(Theta, I) at fill time *)
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** entries dropped for a stale token/generation *)
  entries : int;
  bytes : int;  (** estimated resident bytes *)
  capacity_bytes : int;
}

val create : ?shards:int -> capacity_bytes:int -> unit -> t

(** [find t ~db q] — a hit requires the entry's token/generation to match
    [db]'s current ones; stale entries are removed and counted as
    invalidations (and the lookup as a miss). *)
val find : t -> db:Datalog.Database.t -> Datalog.Atom.t -> hit option

(** [store t ~db q ~result ~reductions ~retrievals ~cost] records the
    outcome of a fresh SLD run against [db]'s current generation. *)
val store :
  t ->
  db:Datalog.Database.t ->
  Datalog.Atom.t ->
  result:Datalog.Subst.t option ->
  reductions:int ->
  retrievals:int ->
  cost:float ->
  unit

val counters : t -> counters
