(** The answer cache: canonicalized query atom -> first answer + fill cost.

    Entries are keyed by {!Key.of_atom}, so alpha-equivalent queries share
    one entry. Each entry stores the answer substitution rebased into
    canonical variable space, whether the query was answered at all, the
    SLD work the fill paid (reductions / retrievals), the paper-cost
    [c(Theta, I)] observed at fill time — the serving layer re-feeds that
    cost to the learner so cached traffic leaves the cost distribution the
    learner sees unchanged — and, when the fill enumerated, the query's
    answer set with a completeness flag.

    With [~subsume:true] the cache also maintains a per-predicate
    subsumption index ({!Subsume}) over its keys. A lookup that misses its
    exact alpha-variant key then probes cached generalizations: a θ-more
    general entry answers the specific query by filtering its stored
    answer set — a {e derived hit} ([hit.derived = true]) — and the
    verdict is promoted to an exact entry under the specific key. Derived
    "yes" needs a matching row; derived "no" needs a parent that failed
    outright or a complete row set with no match — an incomplete set
    proves membership, never absence. Because a derived verdict is read
    off the parent entry, it is valid exactly as long as the parent:
    generation-based invalidation stays exact.

    Validity is tied to one database state: entries record
    {!Datalog.Database.token} and {!Datalog.Database.generation} at fill
    time and are dropped lazily on lookup when either differs ("ASSERT"-
    style mutation bumps the generation). Only non-truncated results should
    be stored (callers enforce this): a depth-truncated "no answer" is
    "unknown", not "no".

    All operations are thread-safe. *)

type t

(** A successful lookup. [result] is rebased onto the querying atom's own
    variables. *)
type hit = {
  result : Datalog.Subst.t option;
  derived : bool;
      (** served by filtering a more general entry's answer set, not by an
          exact alpha-variant key *)
  reductions : int;  (** SLD reductions the fill paid *)
  retrievals : int;  (** SLD retrievals the fill paid *)
  cost : float;  (** paper-cost c(Theta, I) at fill time *)
}

type counters = {
  hits : int;  (** exact alpha-variant hits only *)
  misses : int;  (** neither exact nor derived *)
  derived_hits : int;
  derived_scanned : int;
      (** candidate generalizations examined across subsumption probes *)
  subsume_misses : int;  (** probes that found no usable generalization *)
  evictions : int;
  invalidations : int;  (** entries dropped for a stale token/generation *)
  entries : int;
  index_keys : int;  (** keys registered in the subsumption index *)
  bytes : int;  (** estimated resident bytes *)
  capacity_bytes : int;
}

(** [create ?shards ?subsume ~capacity_bytes ()] — [subsume] (default
    false) turns on the subsumption index and derived hits. *)
val create : ?shards:int -> ?subsume:bool -> capacity_bytes:int -> unit -> t

val subsume_enabled : t -> bool

(** [find t ~db q] — a hit requires the entry's token/generation to match
    [db]'s current ones; stale entries are removed and counted as
    invalidations (and the lookup as a miss, unless a derived hit
    rescues it). *)
val find : t -> db:Datalog.Database.t -> Datalog.Atom.t -> hit option

(** [store t ~db ?answers q ~result ~reductions ~retrievals ~cost] records
    the outcome of a fresh SLD run against [db]'s current generation.
    [answers] is the enumerated answer set (including the first answer)
    with its completeness flag, from {!Datalog.Sld.solve_first_enum}. *)
val store :
  t ->
  db:Datalog.Database.t ->
  ?answers:Datalog.Subst.t list * bool ->
  Datalog.Atom.t ->
  result:Datalog.Subst.t option ->
  reductions:int ->
  retrievals:int ->
  cost:float ->
  unit

val counters : t -> counters
