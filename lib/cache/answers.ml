module D = Datalog

module L = Lru.Make (struct
  type t = D.Atom.t

  let equal = D.Atom.equal
  let hash = D.Atom.hash
end)

type entry = {
  token : int;
  gen : int;
  answered : bool;
  bindings : (int * D.Term.t) list; (* canonical-variable index -> term *)
  rows : (int * D.Term.t) list list option;
      (* enumerated answer set (canonical space), when the fill enumerated *)
  complete : bool; (* [rows] is the whole answer set (no cap, no truncation) *)
  reductions : int;
  retrievals : int;
  cost : float;
}

type hit = {
  result : D.Subst.t option;
  derived : bool;
  reductions : int;
  retrievals : int;
  cost : float;
}

type counters = {
  hits : int;
  misses : int;
  derived_hits : int;
  derived_scanned : int;
  subsume_misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  index_keys : int;
  bytes : int;
  capacity_bytes : int;
}

type t = {
  lru : entry L.t;
  index : Subsume.t option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  derived_hits : int Atomic.t;
  derived_scanned : int Atomic.t;
  subsume_misses : int Atomic.t;
  invalidations : int Atomic.t;
}

let create ?shards ?(subsume = false) ~capacity_bytes () =
  {
    lru = L.create ?shards ~capacity_bytes ();
    index = (if subsume then Some (Subsume.create ()) else None);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    derived_hits = Atomic.make 0;
    derived_scanned = Atomic.make 0;
    subsume_misses = Atomic.make 0;
    invalidations = Atomic.make 0;
  }

let subsume_enabled t = Option.is_some t.index

(* Rough resident footprint: hashtable slot + LRU node + key atom + entry
   record, plus per-binding boxes and the enumerated rows. Precision
   doesn't matter — the estimate only has to scale with entry size so the
   byte budget means something. *)
let estimate_bytes (key : D.Atom.t) e =
  192
  + (32 * List.length key.D.Atom.args)
  + (64 * List.length e.bindings)
  + (match e.rows with
    | None -> 0
    | Some rows ->
      List.fold_left (fun acc r -> acc + 48 + (64 * List.length r)) 0 rows)

(* Rebase a substitution over [vars] (the querying atom's variables, in
   first-occurrence order) into canonical space: index -> term, with the
   term's own variables renamed to their canonical counterparts. *)
let canonical_bindings vars s =
  let to_canonical tm =
    match tm with
    | D.Term.Const _ -> tm
    | D.Term.Var v ->
      let rec go i =
        if i >= Array.length vars then tm
        else if D.Term.equal_var vars.(i) v then
          D.Term.Var (Key.canonical_var i)
        else go (i + 1)
      in
      go 0
  in
  let bs = ref [] in
  Array.iteri
    (fun i v ->
      (* [apply] resolves chains; an unbound variable maps to itself. *)
      match D.Subst.apply s (D.Term.Var v) with
      | D.Term.Var v' when D.Term.equal_var v v' -> ()
      | tm -> bs := (i, to_canonical tm) :: !bs)
    vars;
  List.rev !bs

(* Insert under [key] and register it with the subsumption index when it
   could generalize anything (has at least one variable). *)
let add_entry t key vars e =
  L.add t.lru key e ~bytes:(estimate_bytes key e);
  match t.index with
  | Some ix when Array.length vars > 0 -> Subsume.add ix key
  | _ -> ()

let store t ~db ?answers query ~result ~reductions ~retrievals ~cost =
  let key, vars = Key.of_atom query in
  let answered, bindings =
    match result with
    | None -> (false, [])
    | Some s -> (true, canonical_bindings vars s)
  in
  let rows, complete =
    match answers with
    | None -> (None, false)
    | Some (substs, complete) ->
      (Some (List.map (canonical_bindings vars) substs), complete)
  in
  let e =
    {
      token = D.Database.token db;
      gen = D.Database.generation db;
      answered;
      bindings;
      rows;
      complete;
      reductions;
      retrievals;
      cost;
    }
  in
  add_entry t key vars e

(* Validity check shared by the exact and derived paths: a stale entry is
   dropped from both structures and counted as an invalidation. *)
let live_entry t ~token ~gen key =
  match L.find t.lru key with
  | None ->
    (* Evicted under us: the index learns lazily. *)
    (match t.index with Some ix -> Subsume.remove ix key | None -> ());
    None
  | Some e when e.token <> token || e.gen <> gen ->
    ignore (L.remove t.lru key);
    (match t.index with Some ix -> Subsume.remove ix key | None -> ());
    Atomic.incr t.invalidations;
    None
  | Some e -> Some e

let exact_hit vars e =
  let from_canonical tm =
    match tm with
    | D.Term.Const _ -> tm
    | D.Term.Var v -> (
      match Key.index_of_canonical v with
      | Some i when i < Array.length vars -> D.Term.Var vars.(i)
      | _ -> tm)
  in
  let result =
    if not e.answered then None
    else
      Some
        (List.fold_left
           (fun s (i, tm) -> D.Subst.bind vars.(i) (from_canonical tm) s)
           D.Subst.empty e.bindings)
  in
  {
    result;
    derived = false;
    reductions = e.reductions;
    retrievals = e.retrievals;
    cost = e.cost;
  }

(* Promote a derived verdict to an exact entry under the child's own key:
   the next probe for this (or an alpha-variant) query is an exact hit,
   and the child key joins the index so it can in turn parent "no"
   verdicts. Completeness compounds: a "no" derived from a complete parent
   is itself a complete (empty) answer set; a "yes" keeps only its first
   answer, so its row set is not complete. *)
let promote t ~token ~gen query result =
  let key, vars = Key.of_atom query in
  let answered, bindings =
    match result with
    | None -> (false, [])
    | Some s -> (true, canonical_bindings vars s)
  in
  let e =
    {
      token;
      gen;
      answered;
      bindings;
      rows = (if answered then None else Some []);
      complete = not answered;
      reductions = 0;
      retrievals = 0;
      cost = 0.0;
    }
  in
  add_entry t key vars e

(* The derived-hit probe: walk generalization candidates most-specific
   first; for each live, θ-subsuming parent decide by its answer set.
   Soundness: a "yes" needs a matching row; a "no" needs either a parent
   that failed outright (stored entries are never truncated) or a complete
   row set with no match. An incomplete set that doesn't match proves
   nothing — keep scanning. *)
let derived_find t ix ~token ~gen query key =
  let scanned = ref 0 in
  let rec go = function
    | [] -> (None, !scanned)
    | gkey :: rest -> (
      match live_entry t ~token ~gen gkey with
      | None -> go rest
      | Some e -> (
        incr scanned;
        match Subsume.theta_subsumes ~general:gkey query with
        | None -> go rest
        | Some _ ->
          if not e.answered then (Some (e, None), !scanned)
          else
            let rows, complete =
              match e.rows with
              | Some rows -> (rows, e.complete)
              | None ->
                (* First-answer-only parent: its single stored row can
                   prove membership, never absence. *)
                ([ e.bindings ], false)
            in
            let matched =
              List.find_map
                (fun row -> Subsume.filter_row ~general:gkey ~row query)
                rows
            in
            (match matched with
            | Some s -> (Some (e, Some s), !scanned)
            | None -> if complete then (Some (e, None), !scanned) else go rest)
        ))
  in
  go (Subsume.candidates ix ~exclude:key query)

let find t ~db query =
  let key, vars = Key.of_atom query in
  let token = D.Database.token db and gen = D.Database.generation db in
  match live_entry t ~token ~gen key with
  | Some e ->
    Atomic.incr t.hits;
    Some (exact_hit vars e)
  | None -> (
    match t.index with
    | None ->
      Atomic.incr t.misses;
      None
    | Some ix -> (
      let verdict, scanned = derived_find t ix ~token ~gen query key in
      if scanned > 0 then
        ignore (Atomic.fetch_and_add t.derived_scanned scanned);
      match verdict with
      | Some (parent, result) ->
        Atomic.incr t.derived_hits;
        promote t ~token ~gen query result;
        Some
          {
            result;
            derived = true;
            reductions = parent.reductions;
            retrievals = parent.retrievals;
            cost = parent.cost;
          }
      | None ->
        Atomic.incr t.misses;
        Atomic.incr t.subsume_misses;
        None))

let counters t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    derived_hits = Atomic.get t.derived_hits;
    derived_scanned = Atomic.get t.derived_scanned;
    subsume_misses = Atomic.get t.subsume_misses;
    invalidations = Atomic.get t.invalidations;
    evictions = L.evictions t.lru;
    entries = L.length t.lru;
    index_keys =
      (match t.index with Some ix -> Subsume.length ix | None -> 0);
    bytes = L.bytes t.lru;
    capacity_bytes = L.capacity_bytes t.lru;
  }
