module D = Datalog

module L = Lru.Make (struct
  type t = D.Atom.t

  let equal = D.Atom.equal
  let hash = D.Atom.hash
end)

type entry = {
  token : int;
  gen : int;
  answered : bool;
  bindings : (int * D.Term.t) list; (* canonical-variable index -> term *)
  reductions : int;
  retrievals : int;
  cost : float;
}

type hit = {
  result : D.Subst.t option;
  reductions : int;
  retrievals : int;
  cost : float;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  capacity_bytes : int;
}

type t = {
  lru : entry L.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
}

let create ?shards ~capacity_bytes () =
  {
    lru = L.create ?shards ~capacity_bytes ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
  }

(* Rough resident footprint: hashtable slot + LRU node + key atom + entry
   record, plus per-binding boxes. Precision doesn't matter — the estimate
   only has to scale with entry size so the byte budget means something. *)
let estimate_bytes (key : D.Atom.t) e =
  192 + (32 * List.length key.D.Atom.args) + (64 * List.length e.bindings)

let store t ~db query ~result ~reductions ~retrievals ~cost =
  let key, vars = Key.of_atom query in
  let to_canonical tm =
    match tm with
    | D.Term.Const _ -> tm
    | D.Term.Var v ->
      let rec go i =
        if i >= Array.length vars then tm
        else if D.Term.equal_var vars.(i) v then
          D.Term.Var (Key.canonical_var i)
        else go (i + 1)
      in
      go 0
  in
  let answered, bindings =
    match result with
    | None -> (false, [])
    | Some s ->
      let bs = ref [] in
      Array.iteri
        (fun i v ->
          (* [apply] resolves chains; an unbound variable maps to itself. *)
          match D.Subst.apply s (D.Term.Var v) with
          | D.Term.Var v' when D.Term.equal_var v v' -> ()
          | tm -> bs := (i, to_canonical tm) :: !bs)
        vars;
      (true, List.rev !bs)
  in
  let e =
    {
      token = D.Database.token db;
      gen = D.Database.generation db;
      answered;
      bindings;
      reductions;
      retrievals;
      cost;
    }
  in
  L.add t.lru key e ~bytes:(estimate_bytes key e)

let find t ~db query =
  let key, vars = Key.of_atom query in
  match L.find t.lru key with
  | None ->
    Atomic.incr t.misses;
    None
  | Some e
    when e.token <> D.Database.token db || e.gen <> D.Database.generation db
    ->
    ignore (L.remove t.lru key);
    Atomic.incr t.invalidations;
    Atomic.incr t.misses;
    None
  | Some e ->
    Atomic.incr t.hits;
    let from_canonical tm =
      match tm with
      | D.Term.Const _ -> tm
      | D.Term.Var v -> (
        match Key.index_of_canonical v with
        | Some i when i < Array.length vars -> D.Term.Var vars.(i)
        | _ -> tm)
    in
    let result =
      if not e.answered then None
      else
        Some
          (List.fold_left
             (fun s (i, tm) -> D.Subst.bind vars.(i) (from_canonical tm) s)
             D.Subst.empty e.bindings)
    in
    Some
      {
        result;
        reductions = e.reductions;
        retrievals = e.retrievals;
        cost = e.cost;
      }

let counters t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    invalidations = Atomic.get t.invalidations;
    evictions = L.evictions t.lru;
    entries = L.length t.lru;
    bytes = L.bytes t.lru;
    capacity_bytes = L.capacity_bytes t.lru;
  }
