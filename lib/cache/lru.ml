module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (K : KEY) = struct
  module Tbl = Hashtbl.Make (K)

  type 'v node = {
    key : K.t;
    mutable value : 'v;
    mutable size : int;
    mutable prev : 'v node option; (* toward MRU *)
    mutable next : 'v node option; (* toward LRU *)
  }

  type 'v shard = {
    lock : Mutex.t;
    tbl : 'v node Tbl.t;
    mutable mru : 'v node option;
    mutable lru : 'v node option;
    mutable used : int;
    mutable evicted : int;
    capacity : int;
  }

  type 'v t = { shards : 'v shard array }

  let create ?(shards = 8) ~capacity_bytes () =
    if shards < 1 then invalid_arg "Lru.create: shards must be >= 1";
    if capacity_bytes < 1 then invalid_arg "Lru.create: capacity must be >= 1";
    let per_shard = max 1 (capacity_bytes / shards) in
    {
      shards =
        Array.init shards (fun _ ->
            {
              lock = Mutex.create ();
              tbl = Tbl.create 64;
              mru = None;
              lru = None;
              used = 0;
              evicted = 0;
              capacity = per_shard;
            });
    }

  let shard_of t k = t.shards.(K.hash k land max_int mod Array.length t.shards)

  let with_shard sh f =
    Mutex.lock sh.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

  (* Recency-list surgery; shard lock held. *)
  let unlink sh n =
    (match n.prev with Some p -> p.next <- n.next | None -> sh.mru <- n.next);
    (match n.next with Some x -> x.prev <- n.prev | None -> sh.lru <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front sh n =
    n.prev <- None;
    n.next <- sh.mru;
    (match sh.mru with Some m -> m.prev <- Some n | None -> sh.lru <- Some n);
    sh.mru <- Some n

  (* Never evicts the MRU: an entry larger than the whole shard budget is
     admitted alone and reclaimed by the next insertion. *)
  let rec evict_over sh =
    if sh.used > sh.capacity then
      match (sh.lru, sh.mru) with
      | Some n, Some m when m != n ->
        unlink sh n;
        Tbl.remove sh.tbl n.key;
        sh.used <- sh.used - n.size;
        sh.evicted <- sh.evicted + 1;
        evict_over sh
      | _ -> ()

  let find t k =
    let sh = shard_of t k in
    with_shard sh (fun () ->
        match Tbl.find_opt sh.tbl k with
        | None -> None
        | Some n ->
          unlink sh n;
          push_front sh n;
          Some n.value)

  let add t k v ~bytes =
    let sh = shard_of t k in
    with_shard sh (fun () ->
        (match Tbl.find_opt sh.tbl k with
        | Some n ->
          n.value <- v;
          sh.used <- sh.used - n.size + bytes;
          n.size <- bytes;
          unlink sh n;
          push_front sh n
        | None ->
          let n = { key = k; value = v; size = bytes; prev = None; next = None } in
          Tbl.add sh.tbl k n;
          sh.used <- sh.used + bytes;
          push_front sh n);
        evict_over sh)

  let remove t k =
    let sh = shard_of t k in
    with_shard sh (fun () ->
        match Tbl.find_opt sh.tbl k with
        | None -> false
        | Some n ->
          unlink sh n;
          Tbl.remove sh.tbl k;
          sh.used <- sh.used - n.size;
          true)

  let sum t f =
    Array.fold_left
      (fun acc sh -> acc + with_shard sh (fun () -> f sh))
      0 t.shards

  let length t = sum t (fun sh -> Tbl.length sh.tbl)
  let bytes t = sum t (fun sh -> sh.used)
  let capacity_bytes t = sum t (fun sh -> sh.capacity)
  let evictions t = sum t (fun sh -> sh.evicted)
end
