(** A bounded, sharded LRU map.

    Keys are hashed across independently locked shards; each shard keeps a
    hash table plus an intrusive doubly-linked recency list, so [find] and
    [add] are O(1) under the shard lock. Capacity is accounted in
    caller-estimated bytes ([add ~bytes]); when a shard exceeds its share of
    the budget, least-recently-used entries are evicted until it fits. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (K : KEY) : sig
  type 'v t

  (** [create ?shards ~capacity_bytes ()] — the byte budget is split evenly
      across shards (default 8). Raises [Invalid_argument] when [shards] or
      [capacity_bytes] is not positive. *)
  val create : ?shards:int -> capacity_bytes:int -> unit -> 'v t

  (** [find t k] returns the value and promotes the entry to
      most-recently-used. *)
  val find : 'v t -> K.t -> 'v option

  (** [add t k v ~bytes] inserts or replaces, promotes to MRU, then evicts
      LRU entries while the shard is over budget. An entry larger than a
      whole shard is admitted and evicted by the next insertion. *)
  val add : 'v t -> K.t -> 'v -> bytes:int -> unit

  (** [remove t k] — [true] if the key was present. *)
  val remove : 'v t -> K.t -> bool

  val length : 'v t -> int
  val bytes : 'v t -> int
  val capacity_bytes : 'v t -> int

  (** Total entries evicted for capacity since creation. *)
  val evictions : 'v t -> int
end
