(** Canonical cache keys for query atoms.

    Variables are renamed to a canonical De Bruijn-style order — the i-th
    distinct variable, in order of first occurrence across the argument
    list, becomes canonical variable [i] — so alpha-equivalent atoms such
    as [anc(X, Y)] and [anc(A, B)] map to the same key while [anc(X, X)]
    (a repeated variable) stays distinct from [anc(X, Y)]. The key is an
    ordinary {!Datalog.Atom.t}, so {!Datalog.Atom.equal} /
    {!Datalog.Atom.hash} serve directly as the cache's key operations. *)

(** [of_atom a] is the canonical key together with the original variables
    in canonical order: slot [i] of the array is the query variable that
    canonical variable [i] replaced. *)
val of_atom : Datalog.Atom.t -> Datalog.Atom.t * Datalog.Term.var array

(** The canonical variable for index [i]. *)
val canonical_var : int -> Datalog.Term.var

(** [index_of_canonical v] is [Some i] iff [v] is [canonical_var i]. *)
val index_of_canonical : Datalog.Term.var -> int option
