module D = Datalog

(* "$" cannot appear in a parsed variable name, so canonical variables never
   collide with source-program variables. *)
let canonical_name = "$c"

let canonical_var i : D.Term.var = { name = canonical_name; gen = i }

let index_of_canonical (v : D.Term.var) =
  if String.equal v.D.Term.name canonical_name then Some v.D.Term.gen else None

let of_atom (a : D.Atom.t) =
  (* Queries have a handful of variables at most; a list scan beats a map. *)
  let seen = ref [] in
  let count = ref 0 in
  let index_of v =
    let rec go i = function
      | [] -> None
      | v' :: rest ->
        if D.Term.equal_var v v' then Some i else go (i + 1) rest
    in
    go 0 (List.rev !seen)
  in
  let args =
    List.map
      (fun t ->
        match t with
        | D.Term.Const _ -> t
        | D.Term.Var v ->
          let i =
            match index_of v with
            | Some i -> i
            | None ->
              let i = !count in
              seen := v :: !seen;
              incr count;
              i
          in
          D.Term.Var (canonical_var i))
      a.D.Atom.args
  in
  ({ a with D.Atom.args = args }, Array.of_list (List.rev !seen))
