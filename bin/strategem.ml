(* strategem — command-line front end.

   Subcommands:
     query    run queries from a Datalog file (SLD or semi-naive engine)
     graph    build and print the inference graph of a query form
     optimal  compute the optimal strategy for given success probabilities
     smith    the [Smi89] fact-count baseline strategy
     learn    watch a query stream and improve the strategy (PIB/PALO/PAO)
     explain  answer one query with tracing on and show the span tree
     serve    TCP daemon answering queries and learning online
     client   minimal line-protocol client for the serve daemon
     demo     the full Figure-1 walkthrough *)

open Cmdliner
module D = Datalog
open Infgraph
open Strategy

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_kb path =
  let rules, facts, queries = D.Parser.parse_kb (read_file path) in
  (D.Rulebase.of_list rules, D.Database.of_list facts, queries)

(* ---------- common arguments ---------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Datalog program (rules, facts, queries).")

let form_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "form"; "f" ] ~docv:"ATOM"
        ~doc:
          "Query form as an atom whose constants mark bound positions, e.g. \
           'instructor(q)'.")

let probs_arg =
  Arg.(
    value
    & opt (list ~sep:',' (pair ~sep:'=' string float)) []
    & info [ "probs"; "p" ] ~docv:"L=P,..."
        ~doc:
          "Success probabilities by arc label, e.g. 'D_prof=0.6,D_grad=0.15' \
           (unlisted blockable arcs default to 0.5).")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"OUT.dot" ~doc:"Also write a Graphviz rendering.")

(* ---------- query ---------- *)

let run_query file all limit engine =
  let rulebase, db, queries = load_kb file in
  if queries = [] then (
    Fmt.epr "no ?- queries in %s@." file;
    exit 1);
  List.iter
    (fun goal ->
      Fmt.pr "?- %a.@."
        (Fmt.list ~sep:(Fmt.any ", ") D.Clause.pp_lit)
        goal;
      match engine with
      | `Seminaive ->
        List.iter
          (fun lit ->
            match lit with
            | D.Clause.Pos atom ->
              let answers = D.Seminaive.query rulebase db atom in
              if answers = [] then Fmt.pr "  no.@."
              else
                List.iter (fun a -> Fmt.pr "  %a.@." D.Atom.pp a) answers
            | D.Clause.Neg _ ->
              Fmt.epr "  (semi-naive driver takes positive goals only)@.")
          goal
      | `Sld ->
        let cfg = D.Sld.config ~rulebase ~db () in
        let answers, stats =
          if all then D.Sld.solve_all ?limit cfg goal
          else
            match D.Sld.solve_first cfg goal with
            | Some s, st -> ([ s ], st)
            | None, st -> ([], st)
        in
        if answers = [] then Fmt.pr "  no.@."
        else
          List.iter
            (fun s ->
              if D.Subst.is_empty s then Fmt.pr "  yes.@."
              else Fmt.pr "  %a@." D.Subst.pp s)
            answers;
        Fmt.pr "  [%d reductions, %d retrievals (%d hits)%s]@."
          stats.D.Sld.reductions stats.D.Sld.retrievals
          stats.D.Sld.retrieval_hits
          (if stats.D.Sld.truncated then ", depth-truncated" else ""))
    queries

let query_cmd =
  let all =
    Arg.(value & flag & info [ "all"; "a" ] ~doc:"Enumerate all answers.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit"; "n" ] ~docv:"N" ~doc:"Stop after N answers.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("sld", `Sld); ("seminaive", `Seminaive) ]) `Sld
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"sld (top-down) or seminaive.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run the ?- queries of a Datalog file.")
    Term.(const run_query $ file_arg $ all $ limit $ engine)

(* ---------- graph ---------- *)

let build_graph file form =
  let rulebase, _db, _ = load_kb file in
  Build.build ~rulebase ~query_form:(D.Parser.parse_atom form) ()

let run_graph file form dot save =
  let result = build_graph file form in
  let g = result.Build.graph in
  Fmt.pr "%a@." Graph.pp g;
  if result.Build.truncated then
    Fmt.pr "(recursive rule base: unfolding was depth-bounded)@.";
  Fmt.pr "tree: %d nodes, %d arcs, %d retrievals, total cost %g@."
    (Graph.n_nodes g) (Graph.n_arcs g)
    (List.length (Graph.retrievals g))
    (Costs.total g);
  (match dot with
  | Some path ->
    Dot.to_file path g;
    Fmt.pr "wrote %s@." path
  | None -> ());
  (match save with
  | Some path ->
    Serial.graph_to_file path g;
    Fmt.pr "saved graph to %s@." path
  | None -> ())

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"OUT.graph"
        ~doc:"Save the graph in the strategem text format.")

let graph_cmd =
  Cmd.v
    (Cmd.info "graph" ~doc:"Build the inference graph for a query form.")
    Term.(const run_graph $ file_arg $ form_arg $ dot_arg $ save_arg)

(* ---------- optimal / smith ---------- *)

let model_of_probs g probs = Bernoulli_model.of_alist g probs

let run_optimal file form probs =
  let result = build_graph file form in
  let g = result.Build.graph in
  let model = model_of_probs g probs in
  let dfs, cost = Upsilon.aot model in
  Fmt.pr "optimal DFS strategy: %a@." Spec.pp_dfs dfs;
  Fmt.pr "expected cost: %.4f@." cost;
  if Graph.simple_disjunctive g then begin
    let spec, cost = Upsilon.ot_sidney model in
    Fmt.pr "optimal path order:  %a@." Spec.pp spec;
    Fmt.pr "expected cost: %.4f@." cost
  end

let optimal_cmd =
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Compute the optimal strategy for given success probabilities.")
    Term.(const run_optimal $ file_arg $ form_arg $ probs_arg)

let run_smith file form =
  let rulebase, db, _ = load_kb file in
  let result =
    Build.build ~rulebase ~query_form:(D.Parser.parse_atom form) ()
  in
  let g = result.Build.graph in
  let model = Core.Smith.probabilities g db in
  List.iter
    (fun a ->
      Fmt.pr "%s: p_hat = %.3f@." a.Graph.label
        (Bernoulli_model.prob model a.Graph.arc_id))
    (Graph.retrievals g);
  Fmt.pr "Smith strategy: %a@." Spec.pp_dfs (Core.Smith.strategy g db)

let smith_cmd =
  Cmd.v
    (Cmd.info "smith"
       ~doc:"The [Smi89] baseline: probabilities from database fact counts.")
    Term.(const run_smith $ file_arg $ form_arg)

(* ---------- learn ---------- *)

let mix_arg =
  Arg.(
    required
    & opt (some (list ~sep:',' (pair ~sep:'=' string float))) None
    & info [ "mix"; "m" ] ~docv:"CONST=W,..."
        ~doc:
          "Query distribution over the bound argument, e.g. \
           'russ=0.6,manolis=0.15,fred=0.25'.")

let algo_arg =
  Arg.(
    value
    & opt (enum [ ("pib", `Pib); ("palo", `Palo); ("pao", `Pao) ]) `Pib
    & info [ "algo" ] ~docv:"ALGO" ~doc:"pib, palo or pao.")

let n_arg =
  Arg.(
    value & opt int 10_000
    & info [ "queries"; "n" ] ~docv:"N" ~doc:"Number of queries to watch.")

let delta_arg =
  Arg.(
    value & opt float 0.05
    & info [ "delta" ] ~docv:"D" ~doc:"Confidence parameter.")

let epsilon_arg =
  Arg.(
    value & opt float 0.25
    & info [ "epsilon" ] ~docv:"E" ~doc:"Approximation parameter (palo/pao).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let save_strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-strategy" ] ~docv:"OUT.strategy"
        ~doc:"Persist the learned strategy (strategem text format).")

let run_learn file form mix algo n delta epsilon seed save_strategy =
  let rulebase, db, _ = load_kb file in
  let result =
    Build.build ~rulebase ~query_form:(D.Parser.parse_atom form) ()
  in
  let g = result.Build.graph in
  let dist =
    Stats.Distribution.create
      (List.map
         (fun (const, w) -> ((Build.query_of_consts result [ const ], db), w))
         mix)
  in
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let oracle = Core.Oracle.of_queries g dist rng in
  let start = Spec.default g in
  Fmt.pr "initial strategy: %a@." Spec.pp_dfs start;
  let final =
  (match algo with
  | `Pib ->
    let pib =
      Core.Pib.create ~config:{ Core.Pib.default_config with delta } start
    in
    let climbs = Core.Pib.run pib oracle ~n in
    List.iter
      (fun cl ->
        Fmt.pr "climb %d after %d samples: %a@." cl.Core.Pib.step
          cl.Core.Pib.samples Spec.pp_dfs cl.Core.Pib.to_strategy)
      climbs;
    Fmt.pr "final strategy (%d climbs over %d queries): %a@."
      (List.length climbs) (Core.Pib.samples_total pib) Spec.pp_dfs
      (Core.Pib.current pib);
    Core.Pib.current pib
  | `Palo ->
    let palo =
      Core.Palo.create
        ~config:{ Core.Palo.default_config with delta; epsilon }
        start
    in
    (match Core.Palo.run palo oracle ~max_contexts:n with
    | Core.Palo.Stopped { total_samples; _ } ->
      Fmt.pr "PALO stopped after %d samples (%d climbs)@." total_samples
        (List.length (Core.Palo.climbs palo))
    | Core.Palo.Running -> Fmt.pr "PALO still running after %d contexts@." n);
    Fmt.pr "final strategy: %a@." Spec.pp_dfs (Core.Palo.current palo);
    Core.Palo.current palo
  | `Pao ->
    let report =
      Core.Pao.run ~max_contexts:n ~scale:0.01 ~epsilon ~delta oracle
    in
    List.iter
      (fun a ->
        Fmt.pr "%s: p_hat = %.3f (%d samples)@." a.Graph.label
          report.Core.Pao.p_hat.(a.Graph.arc_id)
          report.Core.Pao.attempts.(a.Graph.arc_id))
      (Graph.retrievals g);
    Fmt.pr "PAO strategy (engineering mode, 1%% of Eq 7; %d contexts%s): %a@."
      report.Core.Pao.contexts_used
      (if report.Core.Pao.capped then ", capped" else "")
      Spec.pp_dfs report.Core.Pao.strategy;
    report.Core.Pao.strategy)
  in
  match save_strategy with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Persist.dfs_to_string final));
    Fmt.pr "saved strategy to %s@." path
  | None -> ()

let learn_cmd =
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Watch a query stream and improve the strategy (PIB/PALO/PAO).")
    Term.(
      const run_learn $ file_arg $ form_arg $ mix_arg $ algo_arg $ n_arg
      $ delta_arg $ epsilon_arg $ seed_arg $ save_strategy_arg)

(* ---------- eval (saved artifacts) ---------- *)

let run_eval graph_file strategy_file probs =
  let g = Serial.graph_of_file graph_file in
  let model = Bernoulli_model.of_alist g probs in
  let spec =
    match strategy_file with
    | Some path ->
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Persist.of_string g text
    | None -> Spec.Dfs (Spec.default g)
  in
  Fmt.pr "strategy: %a@." Spec.pp spec;
  (match spec with
  | Spec.Dfs d ->
    let cost, prob = Cost.exact_dfs d model in
    Fmt.pr "expected cost: %.4f  success probability: %.4f@." cost prob
  | Spec.Paths _ ->
    Fmt.pr "expected cost: %.4f@." (Cost.exact_enum spec model));
  let opt, c_opt = Upsilon.aot model in
  Fmt.pr "optimal DFS strategy would be %a at %.4f@." Spec.pp_dfs opt c_opt

let eval_cmd =
  let graph_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"A graph saved with 'graph --save'.")
  in
  let strategy_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "strategy"; "s" ] ~docv:"FILE"
          ~doc:"A strategy saved with 'learn --save-strategy' (default: the \
                graph's construction order).")
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a saved strategy on a saved graph under given \
             probabilities.")
    Term.(const run_eval $ graph_file $ strategy_file $ probs_arg)

(* ---------- explain ---------- *)

let run_explain file atom_text json dot cached warm =
  let rulebase, db, _ = load_kb file in
  let q = D.Parser.parse_atom atom_text in
  let form = Serve.Registry.form_of_query q in
  let registry = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  let use_cache = cached || warm <> None in
  let cache =
    if use_cache then
      Some
        (Cache.Answers.create ~subsume:true
           ~capacity_bytes:(8 * 1024 * 1024) ())
    else None
  in
  let memo = if use_cache then Some (D.Sld.Memo.create ()) else None in
  (* Warm pass (untraced): fills the cache so the traced pass below shows
     the query being served from it. With [--warm] the fill is the given
     (typically more general) atom instead of the query itself, so the
     traced pass demonstrates a subsumption-derived hit. *)
  (match warm with
  | Some w ->
    ignore
      (Serve.Registry.answer ?cache ?memo registry ~db (D.Parser.parse_atom w))
  | None ->
    if cached then ignore (Serve.Registry.answer ?cache ?memo registry ~db q));
  let tracer = Trace.make () in
  let root = Trace.root tracer ~kind:"query" (D.Atom.to_string q) in
  let ans =
    Serve.Registry.answer ~tracer ~parent:root ?cache ?memo registry ~db q
  in
  Trace.finish tracer root;
  let result =
    match ans.Core.Live.result with
    | None -> "no"
    | Some s when D.Subst.is_empty s -> "yes"
    | Some s -> Format.asprintf "%a" D.Subst.pp s
  in
  if json then Fmt.pr "%s@." (Trace.to_json root)
  else begin
    Fmt.pr "?- %a.@." D.Atom.pp q;
    Fmt.pr "answer: %s  [%d reductions, %d retrievals]%s@." result
      ans.Core.Live.stats.D.Sld.reductions
      ans.Core.Live.stats.D.Sld.retrievals
      (if ans.Core.Live.cached then
         if ans.Core.Live.derived then "  (cached=derived)" else "  (cached)"
       else "");
    Fmt.pr "%a" Trace.pp_tree root;
    let exec_cost =
      List.fold_left
        (fun acc sp -> acc +. Trace.total_cost sp)
        0.0
        (Trace.find_kind root "exec")
    in
    Fmt.pr "paper cost: %g (monitor: %g, %s)@." exec_cost ans.Core.Live.cost
      (if Float.abs (exec_cost -. ans.Core.Live.cost) <= 1e-9 then
         "consistent"
       else "INCONSISTENT")
  end;
  match dot with
  | None -> ()
  | Some path ->
    let arc_ids =
      Trace.find_kind root "arc"
      |> List.filter_map (fun sp ->
             Option.bind (Trace.attr sp "arc_id") int_of_string_opt)
    in
    let graph =
      Serve.Registry.with_live
        (Serve.Registry.find_or_create registry q)
        Core.Live.graph
    in
    Dot.to_file
      ~name:(Format.asprintf "%a" D.Atom.pp form)
      ~highlight:arc_ids path graph;
    Fmt.pr "wrote %s@." path

let explain_cmd =
  let atom_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ATOM" ~doc:"The query to explain, e.g. \
                                   'instructor(manolis)'.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the span tree as one JSON line (with timings) \
                instead of the text tree.")
  in
  let cached =
    Arg.(
      value & flag
      & info [ "cached" ]
          ~doc:
            "Answer the query twice through an answer cache and trace the \
             second, cache-served answer: the tree shows the cache_hit \
             event and the learner pipeline that still runs on hits.")
  in
  let warm =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm" ] ~docv:"ATOM"
          ~doc:
            "Warm the cache with $(docv) (typically a more general query, \
             e.g. 'p(X,Y)' before explaining 'p(a,Y)') instead of the \
             query itself, then trace the query: a subsumption-derived \
             hit shows as (cached=derived) with a derived cache_hit \
             event. Implies the cache even without $(b,--cached).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Answer one query with tracing on and show where every \
          paper-cost unit went (text tree, JSON, or a DOT rendering with \
          the traversed arcs highlighted).")
    Term.(
      const run_explain $ file_arg $ atom_arg $ json $ dot_arg $ cached $ warm)

(* ---------- serve / client ---------- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind/connect to.")

let run_serve file host port workers queue_depth max_conns state_dir
    snapshot_interval delta learner trace_sample cache_mb no_cache subsume
    metrics_port log_level log_file slow_query_ms data_dir buffer_pages loops
    idle_timeout_s max_conns_per_ip max_write_buf_mb max_write_total_mb
    no_lifecycle flight_capacity retain =
  let rulebase, db, _ = load_kb file in
  let db =
    match data_dir with
    | None -> db
    | Some dir ->
      let paged = D.Database.open_paged ~dir ?buffer_pages () in
      if D.Database.size paged = 0 then begin
        (* Cold start: bulk-load the program's facts, then checkpoint so
           restarts replay a compact image instead of the load's WAL. *)
        D.Database.iter (fun fact -> ignore (D.Database.add paged fact)) db;
        D.Database.checkpoint paged;
        Fmt.pr "strategem serve: store: loaded %d fact(s)@."
          (D.Database.size paged)
      end
      else
        Fmt.pr "strategem serve: store: warm start (%d fact(s))@."
          (D.Database.size paged);
      paged
  in
  let learner_config =
    {
      Core.Learner.default_config with
      pib = { Core.Pib.default_config with delta };
      palo = { Core.Palo.default_config with delta };
      pao_delta = delta;
    }
  in
  let config =
    {
      Serve.Server.host;
      port;
      workers;
      queue_depth;
      max_conns;
      state_dir;
      snapshot_interval;
      learner;
      learner_config;
      trace_sample;
      cache_mb = (if no_cache then 0 else cache_mb);
      subsume;
      metrics_port;
      log_level;
      log_file;
      slow_query_us = slow_query_ms *. 1000.0;
      loops;
      max_write_buf = max_write_buf_mb * 1024 * 1024;
      max_write_total = max_write_total_mb * 1024 * 1024;
      idle_timeout_s;
      max_conns_per_ip;
      lifecycle = not no_lifecycle;
      flight_capacity;
      retain;
    }
  in
  Serve.Server.run ~handle_signals:true
    ~on_listen:(fun port ->
      Fmt.pr "strategem serve: listening on %s:%d (%d workers)@." host port
        workers)
    ~on_metrics_listen:(fun mport ->
      Fmt.pr "strategem serve: metrics on %s:%d@." host mport)
    config ~rulebase ~db;
  D.Database.close db;
  Fmt.pr "strategem serve: shut down cleanly@."

let serve_cmd =
  let port =
    Arg.(
      value & opt int 4280
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks one).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:
            "Worker pool size. Workers run as parallel OCaml domains, \
             clamped to the host's recommended domain count; surplus \
             workers run as threads inside the worker domains.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission queue bound, in requests; requests dispatched \
             beyond it are shed with BUSY.")
  in
  let max_conns =
    Arg.(
      value & opt int 10_000
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Open-connection cap; connections past it are answered BUSY \
             and closed at accept.")
  in
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Snapshot learned strategies here (reloaded on startup; also \
             written on SHUTDOWN and by the SNAPSHOT command).")
  in
  let snapshot_interval =
    Arg.(
      value & opt float 0.0
      & info [ "snapshot-interval" ] ~docv:"SECONDS"
          ~doc:"Periodic snapshot interval (0 disables).")
  in
  let learner =
    Arg.(
      value
      & opt
          (enum
             (List.map
                (fun k -> (Core.Learner.kind_to_string k, k))
                Core.Learner.all_kinds))
          `Pib
      & info [ "learner" ] ~docv:"LEARNER"
          ~doc:
            "Per-form learner: pib, pib1, pao, pao-adaptive or palo \
             (default pib).")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Keep the last N query traces in a ring exposed by STATS JSON \
             (0 disables tracing of ordinary queries; TRACE always \
             traces).")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Answer-cache budget in MiB; also enables SLD subgoal \
             memoization. 0 disables both (see --no-cache).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the answer cache and subgoal memoization (same as \
             --cache-mb 0).")
  in
  let subsume =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "subsume" ]
                ~doc:
                  "Subsumption-based answer reuse (default): exact-key \
                   cache misses probe cached generalizations and answer \
                   by filtering their enumerated answer sets \
                   (ANSWER ... cached=derived); general fills also seed \
                   the subgoal memo. Moot under --no-cache." );
            ( false,
              info [ "no-subsume" ]
                ~doc:
                  "Exact alpha-variant cache hits only — no subsumption \
                   index, no answer-set enumeration, no derived hits." );
          ])
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve GET /metrics (Prometheus text format) and GET /healthz \
             on this port (0 picks one; the bound port is printed at \
             startup). Off by default.")
  in
  let log_level =
    Arg.(
      value
      & opt
          (enum
             [
               ("off", None);
               ("debug", Some Obs.Log.Debug);
               ("info", Some Obs.Log.Info);
               ("warn", Some Obs.Log.Warn);
               ("error", Some Obs.Log.Error);
             ])
          (Some Obs.Log.Info)
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: off, debug, info (default), warn \
             or error. Logs are JSONL, one object per line.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"PATH"
          ~doc:"Append structured logs to PATH instead of stderr.")
  in
  let slow_query_ms =
    Arg.(
      value & opt float 0.0
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:
            "Log queries at or over MS milliseconds at warn level, with \
             the query's trace span tree inlined (rate limited to one \
             record per second). 0 disables.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Serve facts from a paged persistent store rooted at DIR \
             instead of in-memory sets. An empty store is bulk-loaded \
             from FILE's facts and checkpointed; a populated one starts \
             warm (FILE's facts are not re-added) after WAL recovery. \
             See docs/STORAGE.md.")
  in
  let buffer_pages =
    Arg.(
      value
      & opt (some int) None
      & info [ "buffer-pages" ] ~docv:"N"
          ~doc:
            "Buffer-pool frames for --data-dir (default 256, min 2); \
             each frame holds one 4 KiB page. Databases larger than the \
             pool page in from disk on access.")
  in
  let loops =
    Arg.(
      value & opt int 0
      & info [ "loops" ] ~docv:"N"
          ~doc:
            "Event loops in the reactor fleet, one domain each with a \
             private epoll instance; new connections are distributed by \
             least connections. 0 (the default) matches the effective \
             worker-domain count.")
  in
  let idle_timeout_s =
    Arg.(
      value & opt float 0.0
      & info [ "idle-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Close connections with no traffic for SECONDS (swept once \
             per second per loop; in-flight requests hold a connection \
             open). 0 (the default) disables.")
  in
  let max_conns_per_ip =
    Arg.(
      value & opt int 0
      & info [ "max-conns-per-ip" ] ~docv:"N"
          ~doc:
            "Accept-time cap on open connections per peer IP; \
             connections past it are answered BUSY and closed. 0 (the \
             default) disables.")
  in
  let max_write_buf_mb =
    Arg.(
      value & opt int 64
      & info [ "max-write-buf-mb" ] ~docv:"MB"
          ~doc:
            "Per-connection write-buffer cap; a connection that buffers \
             past it (a reader that never drains) is answered one BUSY \
             and disconnected. 0 uncaps.")
  in
  let max_write_total_mb =
    Arg.(
      value & opt int 0
      & info [ "max-write-total-mb" ] ~docv:"MB"
          ~doc:
            "Global cap on the sum of all buffered response bytes; \
             breaching it sheds the offending connection like \
             --max-write-buf-mb. 0 (the default) uncaps.")
  in
  let no_lifecycle =
    Arg.(
      value & flag
      & info [ "no-lifecycle" ]
          ~doc:
            "Turn off per-request lifecycle tracking (on by default): \
             stage latency histograms, tail-based trace retention, and \
             flight-ring request events. The flight ring still records \
             accepts and closes.")
  in
  let flight_capacity =
    Arg.(
      value & opt int 4096
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:
            "Per-loop flight-recorder ring capacity in events (rounded \
             up to a power of two; about 48 bytes each). 0 disables the \
             ring. Dump it with the FLIGHT verb, GET /debug/flight, or \
             SIGQUIT.")
  in
  let retain =
    Arg.(
      value & opt int 64
      & info [ "retain" ] ~docv:"N"
          ~doc:
            "Tail-retained trace buffer size per loop: the full span \
             trees of the last N slow / error / shed requests, served \
             by FLIGHT and /debug/flight. 0 disables retention.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over TCP, learning a better strategy from every \
          answered query.")
    Term.(
      const run_serve $ file_arg $ host_arg $ port $ workers $ queue_depth
      $ max_conns $ state_dir $ snapshot_interval $ delta_arg $ learner
      $ trace_sample $ cache_mb $ no_cache $ subsume $ metrics_port $ log_level
      $ log_file $ slow_query_ms $ data_dir $ buffer_pages $ loops
      $ idle_timeout_s $ max_conns_per_ip $ max_write_buf_mb
      $ max_write_total_mb $ no_lifecycle $ flight_capacity $ retain)

let client_lines c commands =
  (* Historical CLI behaviour, byte for byte: write every line, half-close
     so the server sees EOF after the last command and closes once every
     reply is out, then "read to EOF" prints exactly the replies. *)
  List.iter (Serve.Client.send_line c) commands;
  Serve.Client.half_close c;
  Serve.Client.drain c print_endline;
  Serve.Client.close c

let client_v4 c commands =
  (* Pipelined: post every request before reading any response, then
     print the replies sorted by request id, each line prefixed with
     "#<id> " so out-of-order arrival is observable but the output is
     deterministic. Lines the framed dialect cannot carry are answered
     locally under id 0 — the same ERR text the server's line dialect
     would send. *)
  let local = ref [] in
  let expected =
    List.fold_left
      (fun acc line ->
        match Serve.Client.post c line with
        | _id -> acc + 1
        | exception Invalid_argument _ ->
          (match Serve.Protocol.parse line with
          | Serve.Protocol.Empty -> ()
          | Serve.Protocol.Malformed msg ->
            local := Serve.Protocol.err ~code:`Malformed msg :: !local
          | Serve.Protocol.Unknown verb ->
            local := Serve.Protocol.err ~code:`Unknown_verb verb :: !local
          | _ -> ());
          acc)
      0 commands
  in
  (* [local] is reversed; [replies] is reversed again before the sort,
     so seeding it with the once-reversed list restores command order. *)
  let replies = ref (List.map (fun l -> (0, [ l ])) !local) in
  (try
     for _ = 1 to expected do
       replies := Serve.Client.recv c :: !replies
     done
   with End_of_file | Failure _ -> ());
  List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !replies)
  |> List.iter (fun (id, lines) ->
         List.iter (fun l -> Fmt.pr "#%d %s@." id l) lines);
  Serve.Client.close c

let run_client host port proto commands =
  let commands =
    match commands with
    | [ "-" ] -> In_channel.input_lines In_channel.stdin
    | cs -> cs
  in
  let c =
    try Serve.Client.connect ~proto ~host ~port ()
    with
    | Unix.Unix_error (e, _, _) ->
      Fmt.epr "connect %s:%d: %s@." host port (Unix.error_message e);
      exit 1
    | Failure msg ->
      Fmt.epr "connect %s:%d: %s@." host port msg;
      exit 1
  in
  match Serve.Client.protocol c with
  | `Lines -> client_lines c commands
  | `V4 -> client_v4 c commands

let client_cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let proto =
    Arg.(
      value
      & opt (enum [ ("lines", `Lines); ("v4", `V4); ("auto", `Auto) ]) `Lines
      & info [ "proto" ] ~docv:"PROTO"
          ~doc:
            "Wire dialect: lines (default, the v2/v3 line protocol, \
             replies printed verbatim), v4 (framed protocol v4 — all \
             requests are pipelined before any response is read, and \
             replies print as '#<id> <line>' sorted by request id), or \
             auto (negotiate v4, falling back to lines on an older \
             server).")
  in
  let commands =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"COMMAND"
          ~doc:
            "Protocol lines to send, e.g. 'QUERY instructor(russ)'; a \
             single '-' reads them from stdin.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send protocol lines to a strategem serve daemon and print the \
          replies.")
    Term.(const run_client $ host_arg $ port $ proto $ commands)

(* ---------- scrape / watch ---------- *)

(* One blocking HTTP/1.1 GET against the daemon's metrics responder.
   Returns (status, body) or an error message. *)
let http_get ~host ~port path =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
        with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s:%d: %s" host port
               (Unix.error_message e))
        | () -> (
          let req =
            Printf.sprintf
              "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
              path host port
          in
          ignore (Unix.write_substring fd req 0 (String.length req));
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec read_all () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              read_all ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
          in
          (try read_all () with Unix.Unix_error _ -> ());
          let raw = Buffer.contents buf in
          let sep = "\r\n\r\n" in
          let rec find i =
            if i + String.length sep > String.length raw then None
            else if String.sub raw i (String.length sep) = sep then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> Error "malformed HTTP response"
          | Some i ->
            let head = String.sub raw 0 i in
            let body =
              String.sub raw
                (i + String.length sep)
                (String.length raw - i - String.length sep)
            in
            let status =
              match String.split_on_char ' ' head with
              | _ :: code :: _ ->
                Option.value ~default:0 (int_of_string_opt code)
              | _ -> 0
            in
            Ok (status, body)))

let metrics_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"The daemon's --metrics-port.")

let run_scrape host port lint healthz =
  let path = if healthz then "/healthz" else "/metrics" in
  match http_get ~host ~port path with
  | Error msg ->
    Fmt.epr "strategem scrape: %s@." msg;
    exit 1
  | Ok (status, body) ->
    print_string body;
    if status <> 200 then begin
      Fmt.epr "strategem scrape: HTTP %d from %s@." status path;
      exit 1
    end;
    if lint && not healthz then begin
      match Obs.Expo.lint body with
      | Ok () -> Fmt.epr "lint: ok@."
      | Error problems ->
        List.iter (fun p -> Fmt.epr "lint: %s@." p) problems;
        exit 1
    end

let scrape_cmd =
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Check the scraped document against the exposition-format \
             rules (HELP/TYPE presence, name validity, duplicate series, \
             histogram consistency) and exit nonzero on any violation.")
  in
  let healthz =
    Arg.(
      value & flag
      & info [ "healthz" ]
          ~doc:
            "Fetch /healthz instead of /metrics; exits nonzero unless \
             the daemon answers 200 (ready).")
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch a strategem daemon's /metrics (or /healthz) over HTTP \
          and print it, optionally linting the exposition format.")
    Term.(const run_scrape $ host_arg $ metrics_port_arg $ lint $ healthz)

(* ---------- watch ---------- *)

let sample_value samples metric form =
  List.find_opt
    (fun s ->
      s.Obs.Expo.metric = metric
      && List.assoc_opt "form" s.Obs.Expo.labels = Some form)
    samples
  |> Option.map (fun s -> s.Obs.Expo.value)

let solo_value samples metric =
  List.find_opt
    (fun s -> s.Obs.Expo.metric = metric && s.Obs.Expo.labels = [])
    samples
  |> Option.map (fun s -> s.Obs.Expo.value)

let eps_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let watch_tick ~host ~port =
  match http_get ~host ~port "/metrics" with
  | Error msg ->
    Fmt.epr "strategem watch: %s@." msg;
    exit 1
  | Ok (status, body) when status = 200 -> (
    match Obs.Expo.parse_samples body with
    | exception Obs.Expo.Bad_line l ->
      Fmt.epr "strategem watch: bad exposition line: %s@." l;
      exit 1
    | samples ->
      let forms =
        List.filter_map
          (fun s ->
            if s.Obs.Expo.metric = "strategem_learner_epsilon" then
              List.assoc_opt "form" s.Obs.Expo.labels
            else None)
          samples
        |> List.sort_uniq String.compare
      in
      let v metric form = Option.value ~default:0.0 (sample_value samples metric form) in
      (* Exact and subsumption-derived hits are distinct wins (the
         latter paid a filtering pass), so the cache column shows both:
         "hits E+Dd" — D omitted while zero to keep the quiet case
         quiet. *)
      let cache_hits =
        Option.value ~default:0.0 (solo_value samples "strategem_cache_hits_total")
      and derived_hits =
        Option.value ~default:0.0
          (solo_value samples "strategem_cache_derived_hits_total")
      in
      Fmt.pr "uptime %.0fs  queries %.0f  climbs %.0f  cache hits %s  queue %.0f@."
        (Option.value ~default:0.0 (solo_value samples "strategem_uptime_seconds"))
        (List.fold_left (fun acc f -> acc +. v "strategem_queries_total" f) 0.0 forms)
        (List.fold_left (fun acc f -> acc +. v "strategem_climbs_total" f) 0.0 forms)
        (if derived_hits > 0.0 then
           Printf.sprintf "%.0f+%.0fd" cache_hits derived_hits
         else Printf.sprintf "%.0f" cache_hits)
        (Option.value ~default:0.0 (solo_value samples "strategem_queue_depth"));
      (* Paged-store line, only when the daemon serves from one. *)
      (match solo_value samples "strategem_store_enabled" with
      | Some v when v > 0.0 ->
        let sv m = Option.value ~default:0.0 (solo_value samples m) in
        let hits = sv "strategem_store_pool_hits_total" in
        let misses = sv "strategem_store_pool_misses_total" in
        let hit_rate =
          if hits +. misses > 0.0 then 100.0 *. hits /. (hits +. misses)
          else 0.0
        in
        Fmt.pr
          "store facts %.0f  pages %.0f/%.0f pool  hit %.1f%%  \
           evictions %.0f  wal %.0fB  ckpt age %.0fs@."
          (sv "strategem_store_facts")
          (sv "strategem_store_pages")
          (sv "strategem_store_pool_pages")
          hit_rate
          (sv "strategem_store_pool_evictions_total")
          (sv "strategem_store_wal_bytes")
          (sv "strategem_store_checkpoint_age_seconds")
      | _ -> ());
      (* Per-loop fleet columns, present once a fleet server is scraped. *)
      let loop_ids =
        List.filter_map
          (fun s ->
            if s.Obs.Expo.metric = "strategem_loop_conns_open" then
              Option.bind
                (List.assoc_opt "loop" s.Obs.Expo.labels)
                int_of_string_opt
            else None)
          samples
        |> List.sort_uniq Int.compare
      in
      let lv metric loop =
        List.find_opt
          (fun s ->
            s.Obs.Expo.metric = metric
            && List.assoc_opt "loop" s.Obs.Expo.labels
               = Some (string_of_int loop))
          samples
        |> Option.fold ~none:0.0 ~some:(fun s -> s.Obs.Expo.value)
      in
      List.iter
        (fun l ->
          Fmt.pr "loop %-3d conns %.0f  wakeups %.0f  inflight %.0f@." l
            (lv "strategem_loop_conns_open" l)
            (lv "strategem_loop_wakeups_total" l)
            (lv "strategem_loop_pipeline_depth" l))
        loop_ids;
      Fmt.pr "%-32s %8s %8s %7s %10s %9s@." "FORM" "QUERIES" "SAMPLES"
        "CLIMBS" "EPSILON" "FINISHED";
      List.iter
        (fun f ->
          Fmt.pr "%-32s %8.0f %8.0f %7.0f %10s %9s@." f
            (v "strategem_queries_total" f)
            (v "strategem_learner_samples" f)
            (v "strategem_learner_climbs" f)
            (eps_str (v "strategem_learner_epsilon" f))
            (if v "strategem_learner_finished" f > 0.0 then "yes" else "no"))
        forms)
  | Ok (status, _) ->
    Fmt.epr "strategem watch: HTTP %d from /metrics@." status;
    exit 1

let run_watch host port interval count =
  let clear = Unix.isatty Unix.stdout in
  let rec loop n =
    if clear then Fmt.pr "\027[2J\027[H%!";
    watch_tick ~host ~port;
    Fmt.pr "%!";
    if count = 0 || n < count then begin
      if not clear then Fmt.pr "@.";
      Thread.delay interval;
      loop (n + 1)
    end
  in
  loop 1

let watch_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"SECONDS"
          ~doc:"Seconds between scrapes (default 1).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count"; "c" ] ~docv:"N"
          ~doc:"Stop after N scrapes (0 = run until interrupted).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Poll a strategem daemon's /metrics and render a live per-form \
          learner-convergence table (queries, samples, climbs, the \
          converging epsilon bound, and whether learning has finished).")
    Term.(const run_watch $ host_arg $ metrics_port_arg $ interval $ count)

(* ---------- flight / tail ---------- *)

let fetch_flight ~host ~port =
  match http_get ~host ~port "/debug/flight" with
  | Error msg -> Error msg
  | Ok (200, body) -> Ok body
  | Ok (status, _) ->
    Error (Printf.sprintf "HTTP %d from /debug/flight" status)

(* The retained entries of a parsed /debug/flight envelope, as
   (seq, summary fields, span) triples sorted by retention sequence. *)
let retained_entries doc =
  let entries =
    match doc with
    | Trace.Json.Obj fields -> (
      match List.assoc_opt "retained" fields with
      | Some (Trace.Json.Arr es) -> es
      | _ -> [])
    | _ -> []
  in
  List.filter_map
    (fun e ->
      match e with
      | Trace.Json.Obj ef ->
        let num k =
          match List.assoc_opt k ef with
          | Some (Trace.Json.Num raw) -> int_of_string_opt raw
          | _ -> None
        in
        let str k =
          match List.assoc_opt k ef with
          | Some (Trace.Json.Str s) -> s
          | _ -> ""
        in
        Option.bind (num "seq") (fun seq ->
            Option.map
              (fun span ->
                ( seq,
                  (Option.value ~default:0 (num "loop"),
                   Option.value ~default:0 (num "conn"),
                   Option.value ~default:0 (num "rid"),
                   str "reason",
                   Option.value ~default:0 (num "total_us")),
                  span ))
              (match List.assoc_opt "span" ef with
              | Some (Trace.Json.Obj _ as sv) -> (
                match Trace.of_json_value sv with
                | sp -> Some sp
                | exception Trace.Parse_error _ -> None)
              | _ -> None))
      | _ -> None)
    entries
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let run_flight host port chrome out =
  match fetch_flight ~host ~port with
  | Error msg ->
    Fmt.epr "strategem flight: %s@." msg;
    exit 1
  | Ok body ->
    let doc =
      if not chrome then body
      else
        match Trace.Json.parse body with
        | exception Trace.Parse_error msg ->
          Fmt.epr "strategem flight: bad dump: %s@." msg;
          exit 1
        | parsed ->
          retained_entries parsed
          |> List.map (fun (_, _, span) -> span)
          |> Trace.to_chrome
    in
    (match out with
    | None -> print_endline doc
    | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          output_string oc doc;
          output_char oc '\n');
      Fmt.pr "strategem flight: wrote %s@." path)

let flight_cmd =
  let chrome =
    Arg.(
      value & flag
      & info [ "chrome" ]
          ~doc:
            "Convert the dump's retained span trees to Chrome \
             trace-event / Perfetto JSON (load it at chrome://tracing or \
             ui.perfetto.dev; each event loop gets its own track) \
             instead of printing the raw envelope.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Dump a strategem daemon's flight recorder (per-loop lifecycle \
          event rings plus tail-retained slow/error/shed traces) over \
          GET /debug/flight, raw or as Chrome trace-event JSON.")
    Term.(const run_flight $ host_arg $ metrics_port_arg $ chrome $ out)

let run_tail host port interval count =
  let last = ref (-1) in
  let tick () =
    match fetch_flight ~host ~port with
    | Error msg ->
      Fmt.epr "strategem tail: %s@." msg;
      exit 1
    | Ok body -> (
      match Trace.Json.parse body with
      | exception Trace.Parse_error msg ->
        Fmt.epr "strategem tail: bad dump: %s@." msg;
        exit 1
      | parsed ->
        List.iter
          (fun (seq, (loop, conn, rid, reason, total_us), span) ->
            if seq > !last then begin
              last := seq;
              Fmt.pr "#%d loop=%d conn=%d rid=%d %s %dus %s@." seq loop
                conn rid reason total_us (Trace.to_json span)
            end)
          (retained_entries parsed))
  in
  let rec loop n =
    tick ();
    Fmt.pr "%!";
    if count = 0 || n < count then begin
      Thread.delay interval;
      loop (n + 1)
    end
  in
  loop 1

let tail_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls (default 1).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count"; "c" ] ~docv:"N"
          ~doc:"Stop after N polls (0 = run until interrupted).")
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Live-stream the traces a strategem daemon's tail-based \
          retention keeps (slow, error, and shed requests): poll \
          /debug/flight and print each newly retained span tree once, \
          as '#seq loop= conn= rid= reason total_us <span JSON>'.")
    Term.(const run_tail $ host_arg $ metrics_port_arg $ interval $ count)

(* ---------- demo ---------- *)

let run_demo () =
  let result = Workload.University.build () in
  let t1 = Workload.University.theta1 result in
  let t2 = Workload.University.theta2 result in
  let model = Workload.University.model_section2 result in
  Fmt.pr "Figure 1 knowledge base:@.%s@." Workload.University.rules_text;
  Fmt.pr "Theta1 = %a  C = %.2f@." Spec.pp_dfs t1 (fst (Cost.exact_dfs t1 model));
  Fmt.pr "Theta2 = %a  C = %.2f@." Spec.pp_dfs t2 (fst (Cost.exact_dfs t2 model));
  let mix, _ = Workload.University.minors_mix result in
  let oracle =
    Core.Oracle.of_queries result.Build.graph mix (Stats.Rng.create 1L)
  in
  let pib = Core.Pib.create t1 in
  let climbs = Core.Pib.run pib oracle ~n:3000 in
  Fmt.pr
    "under the adversarial 'minors' query mix, PIB switched %d time(s); \
     final: %a@."
    (List.length climbs) Spec.pp_dfs (Core.Pib.current pib)

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"The Figure-1 walkthrough.")
    Term.(const run_demo $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "strategem" ~version:"1.0.0"
       ~doc:
         "Learning efficient query processing strategies (Greiner, PODS \
          1992).")
    [
      query_cmd; graph_cmd; optimal_cmd; smith_cmd; learn_cmd; eval_cmd;
      explain_cmd; serve_cmd; client_cmd; scrape_cmd; watch_cmd; flight_cmd;
      tail_cmd; demo_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
