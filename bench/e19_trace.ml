(* E19 — tracing overhead on the serve path.

   The acceptance bar for lib/trace: with tracing {e disabled} the serve
   path (Registry.answer, the code every QUERY goes through) must cost
   < 5% over an untraced run. "Disabled" means the null tracer is
   threaded through SLD, the executor, and the learner pipeline but every
   hook is a single tag test.

   Three modes over the same query stream, interleaved round-robin so
   drift hits all modes equally, fresh registry per repetition so the
   learning trajectory (one early climb) is identical:

   - off     Registry.answer with no tracer — the default serve path.
   - off2    the same again — an independent sample of the same
             configuration; |off − off2| is the measurement noise floor
             the <5% bar must be read against.
   - on      a fresh collecting tracer per query, rooted serve span
             (what a query pays under --trace-sample).
   - on+json the above plus Trace.to_json — the full TRACE verb cost. *)

module D = Datalog

let queries_per_rep = 30_000
let reps = 5

type mode = Off | Off2 | On | On_json

let mode_name = function
  | Off -> "off"
  | Off2 -> "off2"
  | On -> "on"
  | On_json -> "on+json"

let fresh_registry () =
  let rb = Workload.University.rulebase () in
  let metrics = Serve.Metrics.create () in
  Serve.Registry.create ~rulebase:rb metrics

(* The Figure 1 stream: grad-heavy, with misses and a free-form query
   mixed in, so the SLD engine, the executor, and the learner all run. *)
let queries =
  [|
    D.Atom.make "instructor" [ D.Term.const "manolis" ];
    D.Atom.make "instructor" [ D.Term.const "manolis" ];
    D.Atom.make "instructor" [ D.Term.const "russ" ];
    D.Atom.make "instructor" [ D.Term.const "manolis" ];
    D.Atom.make "instructor" [ D.Term.const "fred" ];
  |]

let run_rep mode =
  let reg = fresh_registry () in
  let db = Workload.University.db1 () in
  let n = queries_per_rep in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let q = queries.(i mod Array.length queries) in
    match mode with
    | Off | Off2 -> ignore (Serve.Registry.answer reg ~db q)
    | On ->
      let tracer = Trace.make () in
      let root = Trace.root tracer ~kind:"serve" (D.Atom.to_string q) in
      ignore (Serve.Registry.answer ~tracer ~parent:root reg ~db q);
      Trace.finish tracer root
    | On_json ->
      let tracer = Trace.make () in
      let root = Trace.root tracer ~kind:"serve" (D.Atom.to_string q) in
      ignore (Serve.Registry.answer ~tracer ~parent:root reg ~db q);
      Trace.finish tracer root;
      ignore (Trace.to_json root)
  done;
  float_of_int n /. (Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a.(Array.length a / 2)

let run () =
  let modes = [ Off; Off2; On; On_json ] in
  (* Warm-up: touch every mode once so allocator/caches settle. *)
  List.iter (fun m -> ignore (run_rep m)) modes;
  let samples =
    List.map
      (fun m ->
        (m, List.init reps (fun _ -> run_rep m)))
      modes
  in
  let qps m = median (List.assoc m samples) in
  let base = qps Off in
  let rows =
    List.map
      (fun m ->
        let v = qps m in
        [
          mode_name m;
          Table.f1 (v /. 1000.);
          Table.pct ((base -. v) /. base);
        ])
      modes
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E19: tracing overhead, Registry.answer on Figure 1 (%d queries x \
          %d reps, median)"
         queries_per_rep reps)
    ~header:[ "tracing"; "kq/s"; "overhead" ] rows;
  let noise = Float.abs (base -. qps Off2) /. base in
  Table.note
    "       off2 is a second untraced run: |off-off2|/off = %.1f%% is the \
     noise floor.\n"
    (100. *. noise)
