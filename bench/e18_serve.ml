(* E18 — the serve daemon under closed-loop load.

   An in-process `strategem serve` instance (ephemeral port, 4 workers)
   answers genealogy queries from N concurrent closed-loop clients, each
   holding one connection and issuing its next query as soon as the
   previous reply lands. A fresh server per row keeps the learning
   trajectories comparable; the climb count comes from the server's own
   STATS. *)

module D = Datalog

let total_queries = 2_000
let client_counts = [ 1; 2; 4; 8 ]

let start_server () =
  let rb = Workload.Genealogy.rulebase () in
  let pop = Workload.Genealogy.populate (Stats.Rng.create 19L) ~n_people:300 in
  let db = Workload.Genealogy.db pop in
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          { Serve.Server.default_config with port = 0; workers = 4 }
          ~rulebase:rb ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port, Array.of_list (Workload.Genealogy.people pop))

(* One closed-loop client: [n] queries, per-request latencies in ms.
   The line dialect keeps this row comparable with historical runs
   (pipelined v4 load is E24's subject). *)
let client port people ~seed ~n =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lat = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let name = people.(Stats.Rng.int rng (Array.length people)) in
    let t0 = Unix.gettimeofday () in
    ignore
      (Serve.Client.request c (Printf.sprintf "QUERY relative(%s)" name));
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e3
  done;
  Serve.Client.close c;
  lat

let climbs_of_stats port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lines = Serve.Client.command c "STATS" in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  List.fold_left
    (fun acc l ->
      match String.split_on_char ' ' l with
      | [ "climbs_total"; n ] -> int_of_string n
      | _ -> acc)
    0 lines

let run () =
  let rows =
    List.map
      (fun clients ->
        let thread, port, people = start_server () in
        let per_client = total_queries / clients in
        let t0 = Unix.gettimeofday () in
        let results = Array.make clients [||] in
        let threads =
          List.init clients (fun i ->
              Thread.create
                (fun () ->
                  results.(i) <- client port people ~seed:(100 + i) ~n:per_client)
                ())
        in
        List.iter Thread.join threads;
        let lats = Array.to_list results |> List.concat_map Array.to_list in
        let wall = Unix.gettimeofday () -. t0 in
        let climbs = climbs_of_stats port in
        Thread.join thread;
        let sorted = List.sort Float.compare lats in
        let n = List.length sorted in
        let mean = List.fold_left ( +. ) 0.0 sorted /. float_of_int n in
        let p95 = List.nth sorted (Int.min (n - 1) (n * 95 / 100)) in
        [
          Table.i clients;
          Table.i (clients * per_client);
          Table.f2 wall;
          Table.f2 (float_of_int (clients * per_client) /. wall);
          Table.f2 mean;
          Table.f2 p95;
          Table.i climbs;
        ])
      client_counts
  in
  Table.print
    ~title:
      "E18: serve daemon, closed-loop genealogy clients (4 workers, fresh \
       server per row)"
    ~header:
      [ "clients"; "queries"; "wall s"; "q/s"; "mean ms"; "p95 ms"; "climbs" ]
    rows
