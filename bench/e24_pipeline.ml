(* E24 — protocol v4 pipelining vs the v3 line protocol.

   Three phases against fresh in-process `strategem serve` instances
   (fresh server per phase, same seeds, so the learning trajectories
   and cache states are comparable):

   A. v3 closed loop — one connection, E24_QUERIES sequential line
      requests (window 1). Its throughput is the offered-load anchor
      and its p99 the latency bar.

   B. v4 pipelined — one connection, the same queries with E24_WINDOW
      requests in flight: post the first W frames, then post the next
      as each response lands. The tentpole claim is throughput: one
      pipelined connection must sustain >= E24_SPEEDUP_MIN (default 2)
      times the sequential v3 rate, because the window keeps every
      worker busy where the line dialect leaves them idle for a full
      RTT per request.

   C. v4 open loop — requests posted on a fixed schedule at exactly
      phase A's achieved rate (equal offered load), responses collected
      by a second thread. Latency is measured from the *scheduled* send
      time, not the actual one, so sender stalls cannot hide queueing
      delay (no coordinated omission). The gate: open-loop v4 p99 <=
      E24_P99_FACTOR (default 1.0) x the v3 closed-loop p99.

   Knobs (environment): E24_QUERIES (default 2000), E24_WINDOW
   (default 32), E24_PEOPLE (default 5000), E24_WORKERS (default 4),
   E24_LOOPS (reactor fleet size; default 0 = match worker domains),
   E24_JSON (path for machine-readable results), E24_REQUIRE_GATE
   (non-empty: exit 1 when either gate fails — the CI smoke gate),
   E24_SPEEDUP_MIN, E24_P99_FACTOR, E24_P99_FLOOR_MS (the p99 bar is
   max(factor x closed p99, floor) — the floor keeps the gate
   meaningful on small/shared hosts where open-loop p99 is dominated
   by sender scheduling jitter rather than server queueing; it still
   catches lost-wakeup-class stalls, which show up as hundreds of
   ms). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( try float_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E24_QUERIES" 2_000
let window () = Int.max 1 (env_int "E24_WINDOW" 32)
let n_people () = env_int "E24_PEOPLE" 5_000
let n_workers () = Int.max 1 (env_int "E24_WORKERS" 4)
let n_loops () = env_int "E24_LOOPS" 0
let pool_size = 32
let zipf_s = 1.1

let make_pool people =
  let n = Array.length people in
  Array.init pool_size (fun i ->
      Printf.sprintf "QUERY relative(%s)" people.(i * n / pool_size mod n))

let zipf_weights =
  Array.init pool_size (fun i ->
      1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

let start_server ~db ~rulebase =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          {
            Serve.Server.default_config with
            port = 0;
            workers = n_workers ();
            loops = n_loops ();
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

let stop_server thread port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  Thread.join thread

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(Int.min (n - 1) (int_of_float (float_of_int n *. p)))

type phase = {
  name : string;
  queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
}

let summarize name ~wall lats =
  let sorted = Array.copy lats in
  Array.sort Float.compare sorted;
  {
    name;
    queries = Array.length lats;
    wall_s = wall;
    qps = float_of_int (Array.length lats) /. wall;
    p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
  }

(* Phase A: sequential line-protocol requests on one connection. *)
let phase_v3 port pool ~n =
  let rng = Stats.Rng.create 7L in
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lat = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let q = pool.(Stats.Rng.categorical rng zipf_weights) in
    let s = Unix.gettimeofday () in
    ignore (Serve.Client.request c q);
    lat.(i) <- (Unix.gettimeofday () -. s) *. 1e3
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Serve.Client.close c;
  summarize "v3 closed loop" ~wall lat

(* Phase B: one v4 connection, [window] requests in flight. *)
let phase_v4 port pool ~n ~window =
  let rng = Stats.Rng.create 7L in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let start = Hashtbl.create window in
  let lat = Array.make n 0.0 in
  let issued = ref 0 in
  let post_one () =
    let q = pool.(Stats.Rng.categorical rng zipf_weights) in
    let id = Serve.Client.post c q in
    Hashtbl.replace start id (Unix.gettimeofday ());
    incr issued
  in
  let t0 = Unix.gettimeofday () in
  while !issued < Int.min window n do
    post_one ()
  done;
  for k = 0 to n - 1 do
    let id, _ = Serve.Client.recv c in
    lat.(k) <- (Unix.gettimeofday () -. Hashtbl.find start id) *. 1e3;
    Hashtbl.remove start id;
    if !issued < n then post_one ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Serve.Client.close c;
  summarize (Printf.sprintf "v4 window %d" window) ~wall lat

(* Phase C: open loop at [rate] req/s on one v4 connection. Request k
   (client ids are sequential from 1, so id = k+1) is due at
   t0 + k/rate; its latency is measured from that due time whether or
   not the sender was on schedule. *)
let phase_open port pool ~n ~rate =
  let rng = Stats.Rng.create 7L in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let lat = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () +. 0.01 in
  let receiver =
    Thread.create
      (fun () ->
        for _ = 1 to n do
          let id, _ = Serve.Client.recv c in
          let due = t0 +. (float_of_int (id - 1) /. rate) in
          lat.(id - 1) <- (Unix.gettimeofday () -. due) *. 1e3
        done)
      ()
  in
  for k = 0 to n - 1 do
    let due = t0 +. (float_of_int k /. rate) in
    let slack = due -. Unix.gettimeofday () in
    if slack > 0.0 then Thread.delay slack;
    ignore (Serve.Client.post c pool.(Stats.Rng.categorical rng zipf_weights))
  done;
  Thread.join receiver;
  let wall = Unix.gettimeofday () -. t0 in
  Serve.Client.close c;
  summarize (Printf.sprintf "v4 open loop @ %.0f/s" rate) ~wall lat

let json_of_phase p =
  Printf.sprintf
    "{\"phase\":\"%s\",\"queries\":%d,\"wall_s\":%.3f,\"qps\":%.1f,\
     \"p50_ms\":%.3f,\"p99_ms\":%.3f}"
    p.name p.queries p.wall_s p.qps p.p50_ms p.p99_ms

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let pool = make_pool (Array.of_list (Workload.Genealogy.people pop)) in
  let n = total_queries () in
  let w = window () in
  let run_phase f =
    let thread, port = start_server ~db ~rulebase in
    let row = f port in
    stop_server thread port;
    row
  in
  let a = run_phase (fun port -> phase_v3 port pool ~n) in
  let b = run_phase (fun port -> phase_v4 port pool ~n ~window:w) in
  let o = run_phase (fun port -> phase_open port pool ~n ~rate:a.qps) in
  let rows = [ a; b; o ] in
  Table.print
    ~title:
      (Printf.sprintf
         "E24: protocol v4 pipelining, one connection (%d queries, \
          Zipf-%g pool of %d, %d people, %d workers; latency in phase C \
          measured from the scheduled send time)"
         n zipf_s pool_size (n_people ()) (n_workers ()))
    ~header:[ "phase"; "queries"; "wall s"; "q/s"; "p50 ms"; "p99 ms" ]
    (List.map
       (fun r ->
         [
           r.name;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.f3 r.p50_ms;
           Table.f3 r.p99_ms;
         ])
       rows);
  let speedup = b.qps /. a.qps in
  Table.note
    "pipelining speedup (v4 window %d / v3 sequential): %.2fx throughput; \
     open-loop p99 %.3f ms vs closed-loop %.3f ms\n"
    w speedup o.p99_ms a.p99_ms;
  (match Sys.getenv_opt "E24_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e24\",\"queries\":%d,\"window\":%d,\"people\":%d,\
       \"workers\":%d,\"pool\":%d,\"zipf_s\":%g,\"rows\":[%s],\
       \"speedup\":%.2f,\"open_p99_ms\":%.3f,\"closed_p99_ms\":%.3f}\n"
      n w (n_people ()) (n_workers ()) pool_size zipf_s
      (String.concat "," (List.map json_of_phase rows))
      speedup o.p99_ms a.p99_ms;
    close_out oc;
    Table.note "wrote %s\n" path);
  match Sys.getenv_opt "E24_REQUIRE_GATE" with
  | None | Some "" -> ()
  | Some _ ->
    let speedup_min = env_float "E24_SPEEDUP_MIN" 2.0 in
    let p99_factor = env_float "E24_P99_FACTOR" 1.0 in
    let p99_floor = env_float "E24_P99_FLOOR_MS" 0.0 in
    let p99_bar = Float.max (a.p99_ms *. p99_factor) p99_floor in
    let failed = ref false in
    if speedup < speedup_min then begin
      Printf.eprintf
        "E24: pipelined throughput %.1f q/s is %.2fx the sequential %.1f \
         q/s (< %.2fx)\n"
        b.qps speedup a.qps speedup_min;
      failed := true
    end;
    if o.p99_ms > p99_bar then begin
      Printf.eprintf
        "E24: open-loop v4 p99 %.3f ms exceeds the bar %.3f ms \
         (max of %.2fx closed-loop p99 %.3f ms and floor %.1f ms)\n"
        o.p99_ms p99_bar p99_factor a.p99_ms p99_floor;
      failed := true
    end;
    if !failed then exit 1 else Table.note "pipelining gates passed\n"
