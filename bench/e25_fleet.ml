(* E25 — reactor-fleet fan-in: throughput and tail latency of many
   concurrent connections as the event-loop count grows.

   E24 measures one pipelined connection; here the bottleneck under test
   is the reactor itself: E25_CONNS v4 connections drive the server at
   once, so with a single event loop every read/parse/flush serializes
   on one domain while the worker pool sits ready. Sharding the reactor
   (--loops N, one loop per domain) is the tentpole; this experiment
   reports how fan-in scales across fleet sizes.

   For each fleet size in E25_LOOPS_LIST (default "1,2,4"), against a
   fresh in-process server (same seeds, comparable trajectories):

   S. single-form closed loop — E25_CONNS connections, each pipelining
      E25_WINDOW requests over the E24-style Zipf pool of
      relative(person) queries. Aggregate q/s is the fan-in throughput.

   M. mixed-form closed loop — the same fan-in, but the pool is Zipf
      over query *forms* (relative, sibling, ancestor_of_probe, inlaw,
      parent_of_probe, grandparent_of_probe — hot forms dominate, cold
      forms keep missing the per-form caches), the open-loop E24
      traffic shape generalized to many forms. Stresses the registry
      and cache cross-section rather than one learner.

   O. mixed-form open loop — the mixed pool again, but offered on a
      fixed schedule at the 1-loop single-form rate (equal offered load
      across fleet sizes), each connection sending its share. Latency
      is measured from the scheduled send time (no coordinated
      omission), so the p99 column shows queueing delay the fleet does
      or does not absorb.

   Knobs (environment): E25_QUERIES (default 2000 per phase),
   E25_CONNS (default 8), E25_WINDOW (default 16), E25_PEOPLE (default
   5000), E25_WORKERS (default 4), E25_LOOPS_LIST (default "1,2,4"),
   E25_JSON (machine-readable results path), E25_REQUIRE_GATE
   (non-empty: exit 1 when the gate fails — the CI smoke gate),
   E25_SPEEDUP_MIN (default 0.9: mixed-form closed q/s at 2 loops must
   be >= this factor of the 1-loop rate; the gate is a no-regression
   bar, not a scaling claim — closed phases are best-of-2 to shrug off
   scheduler preemption, and on a single-core host the gate is
   advisory, since a second loop domain can only timeshare there). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( try float_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E25_QUERIES" 2_000
let n_conns () = Int.max 1 (env_int "E25_CONNS" 8)
let window () = Int.max 1 (env_int "E25_WINDOW" 16)
let n_people () = env_int "E25_PEOPLE" 5_000
let n_workers () = Int.max 1 (env_int "E25_WORKERS" 4)

let loops_list () =
  match Sys.getenv_opt "E25_LOOPS_LIST" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
    |> List.filter (fun l -> l >= 1)

let pool_size = 32
let zipf_s = 1.1

let zipf_weights n =
  Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

(* Single-form pool: the E24 workload — one form, Zipf over constants. *)
let single_form_pool people =
  let n = Array.length people in
  Array.init pool_size (fun i ->
      Printf.sprintf "QUERY relative(%s)" people.(i * n / pool_size mod n))

(* Mixed-form pool: Zipf over forms x a few constants per form. The
   Zipf walks the forms first, so the head of the distribution is the
   hot form and the tail keeps touching every learner. *)
let mixed_forms =
  [|
    "relative"; "sibling"; "ancestor_of_probe"; "inlaw"; "parent_of_probe";
    "grandparent_of_probe";
  |]

let mixed_form_pool people =
  let n = Array.length people in
  let per_form = pool_size / Array.length mixed_forms in
  Array.init (Array.length mixed_forms * per_form) (fun i ->
      let form = mixed_forms.(i / per_form) in
      let person = people.(i * n / pool_size mod n) in
      Printf.sprintf "QUERY %s(%s)" form person)

let start_server ~db ~rulebase ~loops =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          {
            Serve.Server.default_config with
            port = 0;
            workers = n_workers ();
            loops;
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

let stop_server thread port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  Thread.join thread

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(Int.min (n - 1) (int_of_float (float_of_int n *. p)))

type phase = {
  name : string;
  loops : int;
  queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
}

let summarize name ~loops ~wall lats =
  let sorted = Array.copy lats in
  Array.sort Float.compare sorted;
  {
    name;
    loops;
    queries = Array.length lats;
    wall_s = wall;
    qps = float_of_int (Array.length lats) /. wall;
    p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
  }

(* One pipelined v4 connection: [n] queries, [window] in flight.
   Returns per-request latencies. *)
let pipelined_conn port pool ~n ~window ~seed =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let weights = zipf_weights (Array.length pool) in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let start = Hashtbl.create window in
  let lat = Array.make n 0.0 in
  let issued = ref 0 in
  let post_one () =
    let q = pool.(Stats.Rng.categorical rng weights) in
    let id = Serve.Client.post c q in
    Hashtbl.replace start id (Unix.gettimeofday ());
    incr issued
  in
  while !issued < Int.min window n do
    post_one ()
  done;
  for k = 0 to n - 1 do
    let id, _ = Serve.Client.recv c in
    lat.(k) <- (Unix.gettimeofday () -. Hashtbl.find start id) *. 1e3;
    Hashtbl.remove start id;
    if !issued < n then post_one ()
  done;
  Serve.Client.close c;
  lat

(* One open-loop v4 connection at [rate] req/s: request k (ids are
   sequential from 1) is due at t0 + k/rate; latency is measured from
   that due time whether or not the sender kept schedule. *)
let open_loop_conn port pool ~n ~rate ~seed =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let weights = zipf_weights (Array.length pool) in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let lat = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () +. 0.01 in
  let receiver =
    Thread.create
      (fun () ->
        for _ = 1 to n do
          let id, _ = Serve.Client.recv c in
          let due = t0 +. (float_of_int (id - 1) /. rate) in
          lat.(id - 1) <- (Unix.gettimeofday () -. due) *. 1e3
        done)
      ()
  in
  for k = 0 to n - 1 do
    let due = t0 +. (float_of_int k /. rate) in
    let slack = due -. Unix.gettimeofday () in
    if slack > 0.0 then Thread.delay slack;
    ignore (Serve.Client.post c pool.(Stats.Rng.categorical rng weights))
  done;
  Thread.join receiver;
  Serve.Client.close c;
  lat

(* Fan-in: [conns] concurrent client threads sharing the load. *)
let fan_in name ~loops ~conns per_conn =
  let lats = Array.make conns [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init conns (fun k ->
        Thread.create (fun () -> lats.(k) <- per_conn ~k) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  summarize name ~loops ~wall (Array.concat (Array.to_list lats))

let json_of_phase p =
  Printf.sprintf
    "{\"phase\":\"%s\",\"loops\":%d,\"queries\":%d,\"wall_s\":%.3f,\
     \"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}"
    p.name p.loops p.queries p.wall_s p.qps p.p50_ms p.p99_ms

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let people = Array.of_list (Workload.Genealogy.people pop) in
  let single = single_form_pool people in
  let mixed = mixed_form_pool people in
  let n = total_queries () in
  let conns = n_conns () in
  let w = window () in
  let per = Int.max 1 (n / conns) in
  (* closed phases are best-of-2: throughput on a timeshared host is
     noisy downward only (scheduler preemption), so the better rep is
     the truer reading and the CI gate doesn't flake on jitter *)
  let closed pool name loops port =
    let one seed0 =
      fan_in name ~loops ~conns (fun ~k ->
          pipelined_conn port pool ~n:per ~window:w ~seed:(seed0 + k))
    in
    let a = one 7 in
    let b = one 107 in
    if a.qps >= b.qps then a else b
  in
  let anchor_rate = ref 0.0 in
  let rows =
    List.concat_map
      (fun loops ->
        let thread, port = start_server ~db ~rulebase ~loops in
        let s = closed single "single closed" loops port in
        if !anchor_rate = 0.0 then anchor_rate := s.qps;
        let m = closed mixed "mixed closed" loops port in
        let rate = !anchor_rate /. float_of_int conns in
        let o =
          fan_in
            (Printf.sprintf "mixed open @ %.0f/s" !anchor_rate)
            ~loops ~conns
            (fun ~k -> open_loop_conn port mixed ~n:per ~rate ~seed:(7 + k))
        in
        stop_server thread port;
        [ s; m; o ])
      (loops_list ())
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E25: reactor-fleet fan-in, %d conns x window %d (%d queries per \
          phase, %d people, %d workers; open-loop latency measured from \
          the scheduled send time)"
         conns w n (n_people ()) (n_workers ()))
    ~header:[ "phase"; "loops"; "queries"; "wall s"; "q/s"; "p50 ms"; "p99 ms" ]
    (List.map
       (fun r ->
         [
           r.name;
           Table.i r.loops;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.f3 r.p50_ms;
           Table.f3 r.p99_ms;
         ])
       rows);
  let mixed_at l =
    List.find_opt (fun r -> r.loops = l && r.name = "mixed closed") rows
  in
  let ratio =
    match (mixed_at 1, mixed_at 2) with
    | Some one, Some two -> Some (two.qps /. one.qps)
    | _ -> None
  in
  (match ratio with
  | Some x ->
    Table.note "fleet fan-in (mixed-form closed, 2 loops / 1 loop): %.2fx\n" x
  | None -> ());
  (match Sys.getenv_opt "E25_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e25\",\"queries\":%d,\"conns\":%d,\"window\":%d,\
       \"people\":%d,\"workers\":%d,\"zipf_s\":%g,\"rows\":[%s]%s}\n"
      n conns w (n_people ()) (n_workers ()) zipf_s
      (String.concat "," (List.map json_of_phase rows))
      (match ratio with
      | Some x -> Printf.sprintf ",\"mixed_2loop_over_1loop\":%.3f" x
      | None -> "");
    close_out oc;
    Table.note "wrote %s\n" path);
  match Sys.getenv_opt "E25_REQUIRE_GATE" with
  | None | Some "" -> ()
  | Some _ -> (
    let min_ratio = env_float "E25_SPEEDUP_MIN" 0.9 in
    match ratio with
    | None ->
      prerr_endline "E25: gate needs loop counts 1 and 2 in E25_LOOPS_LIST";
      exit 1
    | Some x when x < min_ratio ->
      if Domain.recommended_domain_count () < 2 then
        (* a second loop domain can only timeshare here; the ratio is
           scheduler noise, not a sharding regression *)
        Table.note
          "fleet fan-in gate advisory on a single-core host: %.2fx < %.2fx\n"
          x min_ratio
      else begin
        Printf.eprintf
          "E25: mixed-form fan-in at 2 loops is %.2fx the 1-loop rate \
           (< %.2fx)\n"
          x min_ratio;
        exit 1
      end
    | Some _ -> Table.note "fleet fan-in gate passed\n")
