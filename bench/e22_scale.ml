(* E22 — multicore scaling of the serve path.

   The same closed-loop Zipf genealogy mix as E20, served by worker
   pools of increasing domain counts. Each row starts a fresh in-process
   `strategem serve` with `workers = d`; the server clamps that to the
   host's recommended domain count (surplus workers run as systhreads
   inside the worker domains), so the row records both the requested
   and the effective domain count — read back from the additive
   `domains` STATS field. The scaling claim is throughput: with the
   symbol table, database counters and registry hot paths domain-safe,
   q/s should rise with domains up to the physical core count.

   Knobs (environment): E22_QUERIES (total per row, default 4000),
   E22_CLIENTS (default 8), E22_PEOPLE (population, default 20000),
   E22_DOMAINS (comma list, default "1,2,4,8"), E22_CACHE_MB (default
   64), E22_JSON (path — when set, machine-readable results are written
   there), E22_REQUIRE_SPEEDUP (when set non-empty, exit 1 unless the
   2-domain row's throughput is at least E22_SPEEDUP_MIN (default 1.0)
   times the 1-domain row's — the CI smoke gate). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E22_QUERIES" 4_000
let n_clients () = env_int "E22_CLIENTS" 8
let n_people () = env_int "E22_PEOPLE" 20_000
let cache_mb () = env_int "E22_CACHE_MB" 64

let domain_counts () =
  let spec =
    match Sys.getenv_opt "E22_DOMAINS" with
    | Some s when s <> "" -> s
    | _ -> "1,2,4,8"
  in
  String.split_on_char ',' spec
  |> List.filter_map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some d when d >= 1 -> Some d
         | _ -> None)

let pool_size = 32
let zipf_s = 1.1

let make_pool people =
  let n = Array.length people in
  Array.init pool_size (fun i ->
      if i = 0 then "QUERY relative(X)"
      else
        Printf.sprintf "QUERY relative(%s)"
          people.((i - 1) * n / (pool_size - 1) mod n))

let zipf_weights =
  Array.init pool_size (fun i ->
      1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

let start_server ~workers ~db ~rulebase =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          {
            Serve.Server.default_config with
            port = 0;
            workers;
            cache_mb = cache_mb ();
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

(* One closed-loop client: [n] Zipf-drawn queries, latencies in ms. *)
let client port pool ~seed ~n =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lat = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let q = pool.(Stats.Rng.categorical rng zipf_weights) in
    let t0 = Unix.gettimeofday () in
    ignore (Serve.Client.request c q);
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e3
  done;
  Serve.Client.close c;
  lat

(* Pull the integer counters out of STATS, then shut the server down. *)
let stats_of_server port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lines = Serve.Client.command c "STATS" in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  let get name =
    List.fold_left
      (fun acc l ->
        match String.split_on_char ' ' l with
        | [ k; v ] when k = name -> ( try int_of_string v with _ -> acc)
        | _ -> acc)
      0 lines
  in
  (get "queries_total", get "domains", get "climbs_total")

type row = {
  requested : int;   (* --workers value *)
  effective : int;   (* domains the server actually spawned *)
  queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  climbs : int;
}

let run_row ~workers ~db ~rulebase ~pool =
  let clients = n_clients () in
  let per_client = total_queries () / clients in
  let thread, port = start_server ~workers ~db ~rulebase in
  let results = Array.make clients [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- client port pool ~seed:(100 + i) ~n:per_client)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let _queries_total, effective, climbs = stats_of_server port in
  Thread.join thread;
  let lats =
    Array.to_list results |> List.concat_map Array.to_list
    |> List.sort Float.compare |> Array.of_list
  in
  let n = Array.length lats in
  let pct p = lats.(Int.min (n - 1) (int_of_float (float_of_int n *. p))) in
  {
    requested = workers;
    effective;
    queries = clients * per_client;
    wall_s = wall;
    qps = float_of_int (clients * per_client) /. wall;
    p50_ms = pct 0.50;
    p99_ms = pct 0.99;
    climbs;
  }

let json_of_row r =
  Printf.sprintf
    "{\"workers\":%d,\"domains\":%d,\"queries\":%d,\"wall_s\":%.3f,\
     \"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"climbs\":%d}"
    r.requested r.effective r.queries r.wall_s r.qps r.p50_ms r.p99_ms
    r.climbs

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let pool = make_pool (Array.of_list (Workload.Genealogy.people pop)) in
  let counts = domain_counts () in
  let rows =
    List.map (fun d -> run_row ~workers:d ~db ~rulebase ~pool) counts
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E22: serve-path scaling over worker domains (%d people, Zipf-%g \
          pool of %d, %d clients; host recommends %d domain(s))"
         (n_people ()) zipf_s pool_size (n_clients ())
         (Domain.recommended_domain_count ()))
    ~header:
      [
        "workers"; "domains"; "queries"; "wall s"; "q/s"; "p50 ms"; "p99 ms";
        "climbs";
      ]
    (List.map
       (fun r ->
         [
           Table.i r.requested;
           Table.i r.effective;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.f3 r.p50_ms;
           Table.f3 r.p99_ms;
           Table.i r.climbs;
         ])
       rows);
  let find_qps w =
    List.find_opt (fun r -> r.requested = w) rows |> Option.map (fun r -> r.qps)
  in
  let base = find_qps 1 in
  (match (base, find_qps 4) with
  | Some b, Some q4 when b > 0.0 ->
    Table.note "speedup at 4 workers vs 1: %.2fx throughput\n" (q4 /. b)
  | _ -> ());
  (match Sys.getenv_opt "E22_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let speedup_4 =
      match (base, find_qps 4) with
      | Some b, Some q4 when b > 0.0 -> q4 /. b
      | _ -> 0.0
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e22\",\"queries\":%d,\"clients\":%d,\"people\":%d,\
       \"pool\":%d,\"zipf_s\":%g,\"cache_mb\":%d,\
       \"recommended_domains\":%d,\"rows\":[%s],\"speedup_4_vs_1\":%.2f}\n"
      (total_queries ()) (n_clients ()) (n_people ()) pool_size zipf_s
      (cache_mb ())
      (Domain.recommended_domain_count ())
      (String.concat "," (List.map json_of_row rows))
      speedup_4;
    close_out oc;
    Table.note "wrote %s\n" path);
  match Sys.getenv_opt "E22_REQUIRE_SPEEDUP" with
  | None | Some "" -> ()
  | Some _ -> (
    let min_ratio =
      match Sys.getenv_opt "E22_SPEEDUP_MIN" with
      | Some v -> ( try float_of_string v with _ -> 1.0)
      | None -> 1.0
    in
    match (base, find_qps 2) with
    | Some b, Some q2 when q2 < b *. min_ratio ->
      Printf.eprintf
        "E22: 2-domain throughput %.1f q/s below %.2fx the 1-domain %.1f \
         q/s\n"
        q2 min_ratio b;
      exit 1
    | Some _, Some _ -> Table.note "speedup gate passed\n"
    | _ ->
      Printf.eprintf "E22: speedup gate needs 1- and 2-worker rows\n";
      exit 1)
