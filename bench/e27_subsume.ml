(* E27 — subsumption-derived cache hits on the serve path.

   The workload is a binary disjunction tree of depth D (2^D extensional
   leaves under a membership form r(X)) over a sparse database: M
   members spread across the leaves, probed with ground r(name) queries
   drawn from a much larger name universe, so almost every probe is
   distinct and most answers are "no". A ground "no" is the expensive
   case for SLD — every branch is refuted, a reduction per internal node
   plus a retrieval per leaf — while the full answer set of the free
   query r(X) is only M rows, exactly the shape where filtering a cached
   general entry beats re-deriving.

   Phase A (derived-hit phase): warm each server with r(X) — its
   complete M-row answer set is enumerated into the cache — then hammer
   it with the ground probes over a pipelined v4 connection per client.
   With subsumption off every probe is an exact-key miss and pays the
   full SLD refutation; with it on every probe is answered by filtering
   the warm entry. The gate: subsume-on throughput >=
   E27_SPEEDUP_MIN (default 1.3) x subsume-off.

   Phase B (miss-path overhead): fresh servers, never warmed, and a
   shared stream of all-distinct ground probes — no subsumable
   generalization exists (ground fills are not indexed), so every query
   is a cold miss in both arms and the subsume arm additionally pays the
   index probe and the filter-latency clock on each one. The gate: that
   always-failing probe costs <= E27_OVERHEAD_MAX (default 0.03) of
   throughput. Each arm runs E27_REPEATS (default 3) times and keeps its
   best rate, so the gates measure the probe, not scheduler jitter.

   Knobs (environment): E27_QUERIES (per phase per arm, default 3000),
   E27_CLIENTS (default 2), E27_WINDOW (pipeline depth, default 32),
   E27_DEPTH (D, default 4), E27_MEMBERS (M, default 64),
   E27_REPEATS, E27_SPEEDUP_MIN, E27_OVERHEAD_MAX, E27_JSON (path —
   when set, machine-readable results are written there),
   E27_REQUIRE_GATE (non-empty: exit 1 when a gate fails — the CI
   smoke gate). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( try float_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E27_QUERIES" 3_000
let n_clients () = env_int "E27_CLIENTS" 2
let window () = Int.max 1 (env_int "E27_WINDOW" 32)
let depth () = env_int "E27_DEPTH" 4
let n_members () = env_int "E27_MEMBERS" 64
let repeats () = env_int "E27_REPEATS" 3
let speedup_min () = env_float "E27_SPEEDUP_MIN" 1.3
let overhead_max () = env_float "E27_OVERHEAD_MAX" 0.03

(* Probes come from a name universe 256x the member count, so random
   draws are almost always non-members and almost always distinct. *)
let universe () = 256 * n_members ()

(* A binary disjunction tree of depth [depth]: r = t1, each internal
   t<i> has rules t<i>(X) :- t<2i>(X) and t<i>(X) :- t<2i+1>(X), and
   each of the 2^depth leaves retrieves its own extensional relation.
   Binary fan-out keeps every node at two siblings (the learner's
   reordering work stays linear in the graph), while a ground "no"
   probe still pays a reduction per internal node plus a retrieval per
   leaf — reduction arcs are not blockable, so the learner's context
   build skips them and only probes the leaves. *)
let make_kb () =
  let d = depth () and m = n_members () in
  let leaves = 1 lsl d in
  let buf = Buffer.create (leaves * 64) in
  Buffer.add_string buf "r(X) :- t1(X).\n";
  for i = 1 to leaves - 1 do
    Buffer.add_string buf (Printf.sprintf "t%d(X) :- t%d(X).\n" i (2 * i));
    Buffer.add_string buf (Printf.sprintf "t%d(X) :- t%d(X).\n" i ((2 * i) + 1))
  done;
  for i = leaves to (2 * leaves) - 1 do
    Buffer.add_string buf (Printf.sprintf "t%d(X) :- leaf%d(X).\n" i (i - leaves))
  done;
  let rules, _, _ = D.Parser.parse_kb (Buffer.contents buf) in
  let facts =
    List.init m (fun j ->
        D.Parser.parse_atom (Printf.sprintf "leaf%d(p%d)" (j mod leaves) j))
  in
  (D.Rulebase.of_list rules, D.Database.of_list facts)

let start_server ~subsume ~db ~rulebase =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          {
            Serve.Server.default_config with
            port = 0;
            workers = 2;
            cache_mb = 64;
            subsume;
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

(* Pull the relevant STATS counters, then shut the server down. *)
let stats_of_server port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lines = Serve.Client.command c "STATS" in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  let get name =
    List.fold_left
      (fun acc l ->
        match String.split_on_char ' ' l with
        | [ k; v ] when k = name -> ( try int_of_string v with _ -> acc)
        | _ -> acc)
      0 lines
  in
  (get "cache_hits", get "cache_derived_hits", get "cache_misses")

type row = {
  phase : string;
  subsume : bool;
  queries : int;
  wall_s : float;
  qps : float;
  hits : int;
  derived : int;
  misses : int;
}

(* One closed-loop pipelined client: [n] queries over a v4 connection
   with [window] requests in flight. *)
let client port ~query_of ~next ~n =
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let w = Int.min (window ()) n in
  let issued = ref 0 and received = ref 0 in
  let post_one () =
    ignore (Serve.Client.post c (query_of (Atomic.fetch_and_add next 1)));
    incr issued
  in
  while !issued < w do
    post_one ()
  done;
  while !received < n do
    ignore (Serve.Client.recv c);
    incr received;
    if !issued < n then post_one ()
  done;
  Serve.Client.close c

(* One measured run: [clients] closed-loop threads over one server. *)
let run_once ~phase ~subsume ~warm ~query_of ~db ~rulebase =
  let clients = n_clients () in
  let per_client = total_queries () / clients in
  let thread, port = start_server ~subsume ~db ~rulebase in
  if warm then begin
    let c = Serve.Client.connect ~proto:`Lines ~port () in
    ignore (Serve.Client.request c "QUERY r(X)");
    Serve.Client.close c
  end;
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun _ ->
        Thread.create (fun () -> client port ~query_of ~next ~n:per_client) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let hits, derived, misses = stats_of_server port in
  Thread.join thread;
  let n = clients * per_client in
  {
    phase;
    subsume;
    queries = n;
    wall_s = wall;
    qps = float_of_int n /. wall;
    hits;
    derived;
    misses;
  }

(* Both arms of a phase, best-of-[repeats] by throughput: per-run
   jitter only ever slows a run down, so the max is the truest reading
   of each arm. The arm order alternates between repeats and the heap
   is compacted before each run, so slow drift in the shared process
   (GC pressure, allocator state) cannot systematically favor either
   arm. *)
let run_pair ~phase ~warm ~query_of ~db ~rulebase =
  let best = [| None; None |] in
  let note i r =
    match best.(i) with
    | Some b when b.qps >= r.qps -> ()
    | _ -> best.(i) <- Some r
  in
  let one subsume =
    Gc.compact ();
    let r = run_once ~phase ~subsume ~warm ~query_of ~db ~rulebase in
    note (if subsume then 1 else 0) r
  in
  for rep = 1 to repeats () do
    if rep mod 2 = 1 then begin
      one false;
      one true
    end
    else begin
      one true;
      one false
    end
  done;
  (Option.get best.(0), Option.get best.(1))

let json_of_row r =
  Printf.sprintf
    "{\"phase\":%S,\"subsume\":%b,\"queries\":%d,\"wall_s\":%.3f,\
     \"qps\":%.1f,\"hits\":%d,\"derived_hits\":%d,\"misses\":%d}"
    r.phase r.subsume r.queries r.wall_s r.qps r.hits r.derived r.misses

let run () =
  let rulebase, db = make_kb () in
  (* Phase A: random ground probes, drawn identically in both arms.
     19 in 20 from the full universe (almost surely "no" and almost
     surely distinct), 1 in 20 a member (a derived "yes" on the subsume
     arm). *)
  let rng = Stats.Rng.create 27L in
  let probes =
    Array.init (total_queries ()) (fun _ ->
        if Stats.Rng.int rng 20 = 0 then
          Printf.sprintf "QUERY r(p%d)" (Stats.Rng.int rng (n_members ()))
        else Printf.sprintf "QUERY r(p%d)" (Stats.Rng.int rng (universe ())))
  in
  let random_probe k = probes.(k mod Array.length probes) in
  let a_off, a_on =
    run_pair ~phase:"derived" ~warm:true ~query_of:random_probe ~db ~rulebase
  in
  (* Phase B: all-distinct non-member probes against a cold cache. *)
  let distinct_probe k = Printf.sprintf "QUERY r(q%d)" k in
  let b_off, b_on =
    run_pair ~phase:"miss" ~warm:false ~query_of:distinct_probe ~db ~rulebase
  in
  let rows = [ a_off; a_on; b_off; b_on ] in
  Table.print
    ~title:
      (Printf.sprintf
         "E27: subsumption-derived hits (depth-%d tree, %d members, %d \
          queries/arm, %d clients x window %d, best of %d)"
         (depth ()) (n_members ()) (total_queries ()) (n_clients ())
         (window ()) (repeats ()))
    ~header:
      [ "phase"; "subsume"; "queries"; "wall s"; "q/s"; "hits"; "derived"; "misses" ]
    (List.map
       (fun r ->
         [
           r.phase;
           Table.yesno r.subsume;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.i r.hits;
           Table.i r.derived;
           Table.i r.misses;
         ])
       rows);
  let speedup = a_on.qps /. a_off.qps in
  let overhead = 1.0 -. (b_on.qps /. b_off.qps) in
  Table.note
    "derived-hit speedup (subsume on / off): %.2fx (gate >= %.2fx)\n\
     miss-path overhead: %.1f%% (gate <= %.1f%%)\n"
    speedup (speedup_min ()) (100.0 *. overhead)
    (100.0 *. overhead_max ());
  (match Sys.getenv_opt "E27_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e27\",\"queries\":%d,\"clients\":%d,\"window\":%d,\
       \"depth\":%d,\"members\":%d,\"repeats\":%d,\"rows\":[%s],\
       \"derived_speedup\":%.2f,\"miss_overhead\":%.4f,\
       \"speedup_min\":%.2f,\"overhead_max\":%.4f}\n"
      (total_queries ()) (n_clients ()) (window ()) (depth ())
      (n_members ()) (repeats ())
      (String.concat "," (List.map json_of_row rows))
      speedup overhead (speedup_min ()) (overhead_max ());
    close_out oc;
    Table.note "wrote %s\n" path);
  match Sys.getenv_opt "E27_REQUIRE_GATE" with
  | None | Some "" -> ()
  | Some _ ->
    let failed = ref false in
    if a_on.derived = 0 then begin
      prerr_endline "E27: derived phase served no derived hits";
      failed := true
    end;
    if speedup < speedup_min () then begin
      Printf.eprintf "E27: derived-hit speedup gate failed (%.2fx < %.2fx)\n"
        speedup (speedup_min ());
      failed := true
    end;
    if overhead > overhead_max () then begin
      Printf.eprintf "E27: miss-path overhead gate failed (%.1f%% > %.1f%%)\n"
        (100.0 *. overhead)
        (100.0 *. overhead_max ());
      failed := true
    end;
    if !failed then exit 1 else Table.note "subsumption gates passed\n"
