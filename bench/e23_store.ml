(* E23 — paged fact store vs the in-memory database.

   The same first-arg-indexed retrieval workload run against both
   Database backends while the database size sweeps past the buffer
   pool: facts r(g<i>, m<j>) in first-arg buckets of ~10, queried with
   bound-first patterns r(g<k>, X) drawn Zipf-skewed (the same
   closed-loop skew E20/E22 use), so the pool has the locality real
   query traffic has. The paged rows reopen the store with a pool
   holding ~25% of its pages, so the cold tail of the distribution
   pages from disk through clock eviction. The claim is graceful
   degradation, not parity: locator directory and per-predicate hash
   buckets stay resident, so a lookup costs at most one page fetch and
   the paged backend should hold within a small constant factor of
   memory even 4x past the pool.

   Knobs (environment): E23_SIZES (comma list of fact counts, default
   "2000,10000,40000"), E23_QUERIES (per row, default 20000),
   E23_PATTERNS (distinct bound-first patterns, default 512), E23_JSON
   (path — when set, machine-readable results are written there),
   E23_REQUIRE_RATIO (when set non-empty, exit 1 unless the largest
   row's in-memory q/s is at most E23_RATIO_MAX (default 3.0) times the
   paged q/s — the CI smoke gate). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E23_QUERIES" 20_000
let n_patterns () = env_int "E23_PATTERNS" 512
let bucket = 10
let zipf_s = 1.1

let sizes () =
  let spec =
    match Sys.getenv_opt "E23_SIZES" with
    | Some s when s <> "" -> s
    | _ -> "2000,10000,40000"
  in
  String.split_on_char ',' spec
  |> List.filter_map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some n when n >= bucket -> Some n
         | _ -> None)

let facts n =
  List.init n (fun i ->
      D.Parser.parse_atom (Printf.sprintf "r(g%d, m%d)" (i / bucket) i))

let patterns n =
  let groups = n / bucket in
  let rng = Stats.Rng.create 23L in
  Array.init (n_patterns ()) (fun _ ->
      D.Parser.parse_atom
        (Printf.sprintf "r(g%d, X)" (Stats.Rng.int rng groups)))

(* A fixed Zipf-drawn query schedule (indices into the pattern pool),
   generated outside the timed loop and replayed identically against
   both backends. *)
let schedule q =
  let weights =
    Array.init (n_patterns ()) (fun i ->
        1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)
  in
  let rng = Stats.Rng.create 42L in
  Array.init q (fun _ -> Stats.Rng.categorical rng weights)

(* Retrieval throughput: bound-first [matching] over the schedule, best
   of two timed passes after an untimed warm-up (stabilizes both the
   buffer pool and the allocator). Returns (q/s, facts matched) — the
   match count doubles as a cross-backend correctness check. *)
let bench db pats sched =
  let pass () =
    let hits = ref 0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun i -> hits := !hits + List.length (D.Database.matching db pats.(i)))
      sched;
    let wall = Unix.gettimeofday () -. t0 in
    (float_of_int (Array.length sched) /. wall, !hits)
  in
  ignore (pass ());
  let q1, h1 = pass () in
  let q2, h2 = pass () in
  assert (h1 = h2);
  (Float.max q1 q2, h1)

let store_dir =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "strategem-e23-%d" (Unix.getpid ()))
  in
  fun () ->
    if Sys.file_exists base then
      Array.iter
        (fun f -> Sys.remove (Filename.concat base f))
        (Sys.readdir base)
    else Unix.mkdir base 0o755;
    base

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

type row = {
  size : int;
  store_pages : int;
  pool_pages : int;
  mem_qps : float;
  paged_qps : float;
  ratio : float;  (* mem/paged; > 1 means memory is faster *)
}

let run_row n =
  let fs = facts n in
  let pats = patterns n in
  let sched = schedule (total_queries ()) in
  let mem_db = D.Database.of_list fs in
  let mem_qps, mem_hits = bench mem_db pats sched in
  (* Load the store full-pool, checkpoint to a compact image, then
     reopen with a pool sized at ~25% of its pages. *)
  let dir = store_dir () in
  let loader = D.Database.open_paged ~dir ~wal_sync:Store.Never () in
  List.iter (fun f -> ignore (D.Database.add loader f)) fs;
  D.Database.checkpoint loader;
  let store_pages =
    match D.Database.store_stats loader with
    | Some s -> s.Store.pages
    | None -> 0
  in
  D.Database.close loader;
  let pool_pages = Int.max 2 (store_pages / 4) in
  let paged = D.Database.open_paged ~dir ~buffer_pages:pool_pages () in
  let paged_qps, paged_hits = bench paged pats sched in
  D.Database.close paged;
  rm_rf dir;
  if paged_hits <> mem_hits then begin
    Printf.eprintf "E23: backend mismatch at %d facts: mem=%d paged=%d\n" n
      mem_hits paged_hits;
    exit 1
  end;
  {
    size = n;
    store_pages;
    pool_pages;
    mem_qps;
    paged_qps;
    ratio = (if paged_qps > 0.0 then mem_qps /. paged_qps else Float.infinity);
  }

let json_of_row r =
  Printf.sprintf
    "{\"facts\":%d,\"store_pages\":%d,\"pool_pages\":%d,\"mem_qps\":%.1f,\
     \"paged_qps\":%.1f,\"ratio\":%.2f}"
    r.size r.store_pages r.pool_pages r.mem_qps r.paged_qps r.ratio

let run () =
  let rows = List.map run_row (sizes ()) in
  Table.print
    ~title:
      (Printf.sprintf
         "E23: paged store (pool = 25%% of pages) vs in-memory retrieval \
          (%d Zipf-%g bound-first queries/row, %d-fact buckets)"
         (total_queries ()) zipf_s bucket)
    ~header:
      [ "facts"; "pages"; "pool"; "mem q/s"; "paged q/s"; "mem/paged" ]
    (List.map
       (fun r ->
         [
           Table.i r.size;
           Table.i r.store_pages;
           Table.i r.pool_pages;
           Table.f1 r.mem_qps;
           Table.f1 r.paged_qps;
           Table.f2 r.ratio;
         ])
       rows);
  (match Sys.getenv_opt "E23_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e23\",\"queries\":%d,\"patterns\":%d,\
       \"bucket\":%d,\"rows\":[%s]}\n"
      (total_queries ()) (n_patterns ()) bucket
      (String.concat "," (List.map json_of_row rows));
    close_out oc;
    Table.note "wrote %s\n" path);
  match (Sys.getenv_opt "E23_REQUIRE_RATIO", List.rev rows) with
  | (None | Some ""), _ | _, [] -> ()
  | Some _, worst :: _ ->
    let ratio_max =
      match Sys.getenv_opt "E23_RATIO_MAX" with
      | Some v -> ( try float_of_string v with _ -> 3.0)
      | None -> 3.0
    in
    if worst.ratio > ratio_max then begin
      Printf.eprintf
        "E23: paged throughput %.1f q/s is %.2fx slower than memory's %.1f \
         q/s at %d facts (gate %.2fx)\n"
        worst.paged_qps worst.ratio worst.mem_qps worst.size ratio_max;
      exit 1
    end
    else Table.note "ratio gate passed (%.2fx <= %.2fx)\n" worst.ratio ratio_max
