(* Experiment harness: regenerates every table/figure of the reproduction
   (see DESIGN.md section 2 for the index). Run all with

     dune exec bench/main.exe

   or a subset with e.g. [dune exec bench/main.exe -- e4 e5]. *)

let experiments =
  [
    ("e1", "Section 2 / Figure 1 worked example", E01_worked_example.run);
    ("e2", "Smith [Smi89] baseline vs learned", E02_smith_baseline.run);
    ("e3", "PIB1 filter (Eq 3)", E03_pib1.run);
    ("e4", "PIB anytime trajectory on G_B", E04_pib_anytime.run);
    ("e5", "PAO / Theorem 2", E05_pao.run);
    ("e6", "Adaptive PAO / Theorem 3", E06_pao_adaptive.run);
    ("e7", "PIB vs PALO vs PAO", E07_comparison.run);
    ("e8", "complexity micro-benchmarks (Bechamel)", E08_complexity.run);
    ("e9", "segmented distributed database", E09_segmented.run);
    ("e10", "NAF and first-k applications", E10_applications.run);
    ("e11", "Lemma 1 sensitivity", E11_sensitivity.run);
    ("e12", "figure reproduction", E12_figures.run);
    ("e13", "PIB design-choice ablations", E13_ablation.run);
    ("e14", "magic sets vs full bottom-up", E14_magic.run);
    ("e15", "AND/OR hypergraphs (Note 4)", E15_hypergraph.run);
    ("e16", "genealogy knowledge base end-to-end", E16_genealogy.run);
    ("e17", "live SLD query processor with PIB", E17_live.run);
    ("e18", "serve daemon closed-loop throughput/latency", E18_serve.run);
    ("e19", "tracing overhead on the serve path", E19_trace.run);
    ("e20", "answer caching & memoization on the serve path", E20_cache.run);
    ("e21", "observability overhead on the serve path", E21_obs.run);
    ("e22", "serve-path scaling over worker domains", E22_scale.run);
    ("e23", "paged store vs in-memory retrieval", E23_store.run);
    ("e24", "protocol v4 pipelining vs the v3 line protocol", E24_pipeline.run);
    ("e25", "reactor-fleet fan-in over concurrent connections", E25_fleet.run);
    ( "e26",
      "lifecycle tracing + flight-recorder overhead on/off",
      E26_overhead.run );
    ( "e27",
      "subsumption-derived cache hits vs exact-only on the serve path",
      E27_subsume.run );
  ]

let () =
  let requested =
    Sys.argv |> Array.to_list |> List.tl
    |> List.map String.lowercase_ascii
    |> List.filter (fun a -> a <> "")
  in
  let selected =
    if requested = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id requested) experiments
  in
  if selected = [] then begin
    Printf.eprintf "unknown experiment; available:\n";
    List.iter
      (fun (id, desc, _) -> Printf.eprintf "  %-4s %s\n" id desc)
      experiments;
    exit 1
  end;
  List.iter
    (fun (id, desc, run) ->
      Printf.printf "\n######## %s: %s ########\n" (String.uppercase_ascii id)
        desc;
      run ())
    selected;
  Printf.printf "\nDone: %d experiment(s).\n" (List.length selected)
