(* E26 — observability overhead of the always-on request-lifecycle
   layer: flight recorder + lifecycle spans + stage histograms on vs
   off under the E25 mixed-form closed-loop workload.

   The lifecycle layer (PR 9) stamps every dispatched request through
   accept → frame → queue → worker → flush, writes a flight-recorder
   event per transition into the owning loop's lock-free ring, and on
   finalize replays the ring slice into per-stage histograms (plus a
   retained span tree when the request was slow / shed / errored).
   All of that is on by default, so its cost is a tax on every
   request; this experiment measures that tax and gates it.

   Two arms against otherwise-identical in-process servers:

   off. lifecycle = false, flight_capacity = 0, retain = 0 — the
        serving path as it was before PR 9.
   on.  the default config — lifecycle on, a 4096-event ring per
        loop, 64 retained traces per loop.

   Each arm is the E25 mixed-form closed loop (E26_CONNS pipelined v4
   connections, window E26_WINDOW, Zipf over query forms) on an
   E26_LOOPS-loop fleet, best-of-E26_REPS (throughput noise on a
   timeshared host is downward-only, so the best rep is the truest
   reading). Arms alternate off/on per rep so slow drift (page cache,
   JIT'd nothing here, but CPU frequency) hits both equally.

   overhead% = (off q/s / on q/s - 1) x 100.

   Knobs (environment): E26_QUERIES (default 2000 per rep), E26_CONNS
   (default 8), E26_WINDOW (default 16), E26_PEOPLE (default 5000),
   E26_WORKERS (default 4), E26_LOOPS (default 2), E26_REPS (default
   3), E26_JSON (machine-readable results path), E26_FLIGHT_DUMP
   (path: write the on-arm's FLIGHT envelope there before shutdown —
   the CI failure artifact), E26_REQUIRE_GATE (non-empty: exit 1 when
   overhead% > E26_MAX_OVERHEAD_PCT, default 3.0; advisory on a
   single-core host where the arms can only timeshare). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( try float_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E26_QUERIES" 2_000
let n_conns () = Int.max 1 (env_int "E26_CONNS" 8)
let window () = Int.max 1 (env_int "E26_WINDOW" 16)
let n_people () = env_int "E26_PEOPLE" 5_000
let n_workers () = Int.max 1 (env_int "E26_WORKERS" 4)
let n_loops () = Int.max 1 (env_int "E26_LOOPS" 2)
let n_reps () = Int.max 1 (env_int "E26_REPS" 3)
let pool_size = 32
let zipf_s = 1.1

let zipf_weights n =
  Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

let mixed_forms =
  [|
    "relative"; "sibling"; "ancestor_of_probe"; "inlaw"; "parent_of_probe";
    "grandparent_of_probe";
  |]

let mixed_form_pool people =
  let n = Array.length people in
  let per_form = pool_size / Array.length mixed_forms in
  Array.init (Array.length mixed_forms * per_form) (fun i ->
      let form = mixed_forms.(i / per_form) in
      let person = people.(i * n / pool_size mod n) in
      Printf.sprintf "QUERY %s(%s)" form person)

let config ~lifecycle =
  let base =
    {
      Serve.Server.default_config with
      port = 0;
      workers = n_workers ();
      loops = n_loops ();
      (* deep enough that the closed loop never sheds: the arms must
         compare answered requests, not BUSY replies *)
      queue_depth =
        Int.max Serve.Server.default_config.queue_depth
          (n_conns () * window ());
    }
  in
  if lifecycle then base
  else { base with lifecycle = false; flight_capacity = 0; retain = 0 }

let start_server ~db ~rulebase ~lifecycle =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          (config ~lifecycle) ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

let stop_server thread port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  Thread.join thread

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(Int.min (n - 1) (int_of_float (float_of_int n *. p)))

type rep = { queries : int; wall_s : float; qps : float; p99_ms : float }

let pipelined_conn port pool ~n ~window ~seed =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let weights = zipf_weights (Array.length pool) in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  let start = Hashtbl.create window in
  let lat = Array.make n 0.0 in
  let issued = ref 0 in
  let post_one () =
    let q = pool.(Stats.Rng.categorical rng weights) in
    let id = Serve.Client.post c q in
    Hashtbl.replace start id (Unix.gettimeofday ());
    incr issued
  in
  while !issued < Int.min window n do
    post_one ()
  done;
  for k = 0 to n - 1 do
    let id, _ = Serve.Client.recv c in
    lat.(k) <- (Unix.gettimeofday () -. Hashtbl.find start id) *. 1e3;
    Hashtbl.remove start id;
    if !issued < n then post_one ()
  done;
  Serve.Client.close c;
  lat

let one_rep port pool ~seed0 =
  let conns = n_conns () in
  let per = Int.max 1 (total_queries () / conns) in
  let w = window () in
  let lats = Array.make conns [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init conns (fun k ->
        Thread.create
          (fun () ->
            lats.(k) <- pipelined_conn port pool ~n:per ~window:w
                ~seed:(seed0 + k))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let all = Array.concat (Array.to_list lats) in
  let sorted = Array.copy all in
  Array.sort Float.compare sorted;
  {
    queries = Array.length all;
    wall_s = wall;
    qps = float_of_int (Array.length all) /. wall;
    p99_ms = percentile sorted 0.99;
  }

let dump_flight port =
  match Sys.getenv_opt "E26_FLIGHT_DUMP" with
  | None | Some "" -> ()
  | Some path ->
    let c = Serve.Client.connect ~proto:`Lines ~port () in
    let body = Serve.Client.command c "FLIGHT" in
    Serve.Client.close c;
    let oc = open_out path in
    output_string oc (String.concat "\n" body);
    output_char oc '\n';
    close_out oc;
    Table.note "wrote flight dump %s\n" path

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let people = Array.of_list (Workload.Genealogy.people pop) in
  let pool = mixed_form_pool people in
  let reps = n_reps () in
  (* alternate arms per rep so slow host drift taxes both equally;
     best-of across reps per arm *)
  let best = Hashtbl.create 2 in
  for r = 0 to (2 * reps) - 1 do
    let lifecycle = r mod 2 = 1 in
    let thread, port = start_server ~db ~rulebase ~lifecycle in
    let rep = one_rep port pool ~seed0:(7 + (100 * r)) in
    if lifecycle && r = (2 * reps) - 1 then dump_flight port;
    stop_server thread port;
    let key = if lifecycle then "on" else "off" in
    (match Hashtbl.find_opt best key with
    | Some prev when prev.qps >= rep.qps -> ()
    | _ -> Hashtbl.replace best key rep)
  done;
  let off = Hashtbl.find best "off" in
  let on = Hashtbl.find best "on" in
  let overhead_pct = ((off.qps /. on.qps) -. 1.0) *. 100.0 in
  Table.print
    ~title:
      (Printf.sprintf
         "E26: lifecycle + flight-recorder overhead, mixed-form closed loop \
          (%d conns x window %d, %d queries per rep, best of %d reps, %d \
          loops, %d workers)"
         (n_conns ()) (window ()) (total_queries ()) reps (n_loops ())
         (n_workers ()))
    ~header:[ "arm"; "queries"; "wall s"; "q/s"; "p99 ms" ]
    [
      [
        "lifecycle off"; Table.i off.queries; Table.f2 off.wall_s;
        Table.f1 off.qps; Table.f3 off.p99_ms;
      ];
      [
        "lifecycle on"; Table.i on.queries; Table.f2 on.wall_s;
        Table.f1 on.qps; Table.f3 on.p99_ms;
      ];
    ];
  Table.note "always-on lifecycle overhead: %.2f%% (off %.1f q/s, on %.1f q/s)\n"
    overhead_pct off.qps on.qps;
  (match Sys.getenv_opt "E26_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e26\",\"queries\":%d,\"conns\":%d,\"window\":%d,\
       \"people\":%d,\"workers\":%d,\"loops\":%d,\"reps\":%d,\
       \"off_qps\":%.1f,\"on_qps\":%.1f,\"off_p99_ms\":%.3f,\
       \"on_p99_ms\":%.3f,\"overhead_pct\":%.2f}\n"
      (total_queries ()) (n_conns ()) (window ()) (n_people ()) (n_workers ())
      (n_loops ()) reps off.qps on.qps off.p99_ms on.p99_ms overhead_pct;
    close_out oc;
    Table.note "wrote %s\n" path);
  match Sys.getenv_opt "E26_REQUIRE_GATE" with
  | None | Some "" -> ()
  | Some _ ->
    let max_pct = env_float "E26_MAX_OVERHEAD_PCT" 3.0 in
    if overhead_pct > max_pct then
      if Domain.recommended_domain_count () < 2 then
        (* loops, workers, and clients all timeshare one core here;
           the delta is scheduler noise, not lifecycle cost *)
        Table.note
          "overhead gate advisory on a single-core host: %.2f%% > %.2f%%\n"
          overhead_pct max_pct
      else begin
        Printf.eprintf
          "E26: always-on lifecycle overhead %.2f%% exceeds %.2f%%\n"
          overhead_pct max_pct;
        exit 1
      end
    else Table.note "overhead gate passed (%.2f%% <= %.2f%%)\n" overhead_pct
        max_pct
