(* E20 — answer caching & subgoal memoization on the serve path.

   A closed-loop Zipf-repeated genealogy mix against an in-process
   `strategem serve` instance, cache off vs cache on, same workload and
   seeds. The query pool has 32 entries: rank 1 is the free query
   relative(X) — expensive, because a free retrieval eagerly materializes
   every match in the relation — and ranks 2..32 are bound relative(name)
   queries (indexed, cheap). Zipf skew means the heavy head query repeats
   constantly, which is precisely the traffic an answer cache turns
   near-free; the learner still observes every query either way.

   Knobs (environment): E20_QUERIES (total, default 4000), E20_CLIENTS
   (default 4), E20_PEOPLE (population, default 20000), E20_JSON (path —
   when set, machine-readable results are written there). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E20_QUERIES" 4_000
let n_clients () = env_int "E20_CLIENTS" 4
let n_people () = env_int "E20_PEOPLE" 20_000
let pool_size = 32
let zipf_s = 1.1

(* The shared workload: one population, one Zipf pool. Rank 1 is the free
   query; the bound ranks spread evenly through the population so they
   don't collide. *)
let make_pool people =
  let n = Array.length people in
  Array.init pool_size (fun i ->
      if i = 0 then "QUERY relative(X)"
      else
        Printf.sprintf "QUERY relative(%s)"
          people.((i - 1) * n / (pool_size - 1) mod n))

let zipf_weights =
  Array.init pool_size (fun i ->
      1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

let start_server ~cache ~db ~rulebase =
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          {
            Serve.Server.default_config with
            port = 0;
            workers = 4;
            cache_mb = (if cache then 64 else 0);
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port)

(* One closed-loop client: [n] Zipf-drawn queries, latencies in ms. *)
let client port pool ~seed ~n =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lat = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let q = pool.(Stats.Rng.categorical rng zipf_weights) in
    let t0 = Unix.gettimeofday () in
    ignore (Serve.Client.request c q);
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e3
  done;
  Serve.Client.close c;
  lat

(* Pull the integer counters out of STATS, then shut the server down. *)
let stats_of_server port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lines = Serve.Client.command c "STATS" in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c;
  let get name =
    List.fold_left
      (fun acc l ->
        match String.split_on_char ' ' l with
        | [ k; v ] when k = name -> ( try int_of_string v with _ -> acc)
        | _ -> acc)
      0 lines
  in
  (get "queries_total", get "cache_hits", get "memo_hits", get "climbs_total")

type row = {
  cache : bool;
  queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  hit_rate : float;
  memo_hits : int;
  climbs : int;
}

let run_row ~cache ~db ~rulebase ~pool =
  let clients = n_clients () in
  let per_client = total_queries () / clients in
  let thread, port = start_server ~cache ~db ~rulebase in
  let results = Array.make clients [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- client port pool ~seed:(100 + i) ~n:per_client)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let queries_total, cache_hits, memo_hits, climbs = stats_of_server port in
  Thread.join thread;
  let lats =
    Array.to_list results |> List.concat_map Array.to_list
    |> List.sort Float.compare |> Array.of_list
  in
  let n = Array.length lats in
  let pct p = lats.(Int.min (n - 1) (int_of_float (float_of_int n *. p))) in
  {
    cache;
    queries = clients * per_client;
    wall_s = wall;
    qps = float_of_int (clients * per_client) /. wall;
    p50_ms = pct 0.50;
    p99_ms = pct 0.99;
    hit_rate =
      (if queries_total = 0 then 0.0
       else float_of_int cache_hits /. float_of_int queries_total);
    memo_hits;
    climbs;
  }

let json_of_row r =
  Printf.sprintf
    "{\"cache\":%b,\"queries\":%d,\"wall_s\":%.3f,\"qps\":%.1f,\
     \"p50_ms\":%.3f,\"p99_ms\":%.3f,\"hit_rate\":%.3f,\"memo_hits\":%d,\
     \"climbs\":%d}"
    r.cache r.queries r.wall_s r.qps r.p50_ms r.p99_ms r.hit_rate r.memo_hits
    r.climbs

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let pool = make_pool (Array.of_list (Workload.Genealogy.people pop)) in
  let off = run_row ~cache:false ~db ~rulebase ~pool in
  let on = run_row ~cache:true ~db ~rulebase ~pool in
  let rows = [ off; on ] in
  Table.print
    ~title:
      (Printf.sprintf
         "E20: answer cache on the serve path (%d people, Zipf-%g pool of \
          %d, %d clients)"
         (n_people ()) zipf_s pool_size (n_clients ()))
    ~header:
      [
        "cache"; "queries"; "wall s"; "q/s"; "p50 ms"; "p99 ms"; "hit rate";
        "memo hits"; "climbs";
      ]
    (List.map
       (fun r ->
         [
           Table.yesno r.cache;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.f3 r.p50_ms;
           Table.f3 r.p99_ms;
           Table.pct r.hit_rate;
           Table.i r.memo_hits;
           Table.i r.climbs;
         ])
       rows);
  Table.note "speedup (cache on / off): %.2fx throughput, p99 %.3f -> %.3f ms\n"
    (on.qps /. off.qps) off.p99_ms on.p99_ms;
  match Sys.getenv_opt "E20_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e20\",\"queries\":%d,\"clients\":%d,\"people\":%d,\
       \"pool\":%d,\"zipf_s\":%g,\"rows\":[%s],\"throughput_speedup\":%.2f}\n"
      (total_queries ()) (n_clients ()) (n_people ()) pool_size zipf_s
      (String.concat "," (List.map json_of_row rows))
      (on.qps /. off.qps);
    close_out oc;
    Table.note "wrote %s\n" path
