(* E21 — observability overhead on the serve path.

   The E20 closed-loop Zipf genealogy workload on identical seeds, four
   ways: observability off (no metrics responder, no structured log);
   everything on at production verbosity (metrics responder up,
   info-level JSONL log to a file, slow-query log armed at 50 ms); on +
   an active scraper hitting GET /metrics at 10 Hz for the whole run;
   and on + debug verbosity, which writes one JSONL record per query —
   a diagnostic mode, shown so its price is a measured number rather
   than a guess. The acceptance bar is that "on" (everything enabled)
   costs < 5% throughput vs "off": metrics updates are atomics and
   sharded histogram mutexes, an info-level log writes only on
   lifecycle events and slow queries, and a scrape renders outside the
   hot path.

   Each mode runs E21_REPS times (default 3) and reports its best run —
   closed-loop wall times on a shared machine swing several percent
   run to run, and the minimum is the measurement least polluted by
   scheduler noise.

   Knobs (environment): E21_QUERIES (total, default 20000), E21_CLIENTS
   (default 4), E21_PEOPLE (population, default 20000), E21_SCRAPE_HZ
   (default 10), E21_REPS (default 3), E21_JSON (path — when set,
   machine-readable results are written there). *)

module D = Datalog

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let total_queries () = env_int "E21_QUERIES" 20_000
let n_clients () = env_int "E21_CLIENTS" 4
let n_people () = env_int "E21_PEOPLE" 20_000
let scrape_hz () = env_int "E21_SCRAPE_HZ" 10
let reps () = Int.max 1 (env_int "E21_REPS" 3)
let pool_size = 32
let zipf_s = 1.1

let make_pool people =
  let n = Array.length people in
  Array.init pool_size (fun i ->
      if i = 0 then "QUERY relative(X)"
      else
        Printf.sprintf "QUERY relative(%s)"
          people.((i - 1) * n / (pool_size - 1) mod n))

let zipf_weights =
  Array.init pool_size (fun i ->
      1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)

type mode = Off | On | On_scraped | On_debug

let mode_name = function
  | Off -> "off"
  | On -> "on"
  | On_scraped -> "on+scrape"
  | On_debug -> "on+debug"

let start_server ~mode ~log_path ~db ~rulebase =
  let port = Atomic.make 0 in
  let mport = Atomic.make 0 in
  let observed = mode <> Off in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          ~on_metrics_listen:(fun p -> Atomic.set mport p)
          {
            Serve.Server.default_config with
            port = 0;
            workers = 4;
            metrics_port = (if observed then Some 0 else None);
            log_level =
              (match mode with
              | Off -> None
              | On_debug -> Some Obs.Log.Debug
              | On | On_scraped -> Some Obs.Log.Info);
            log_file = (if observed then Some log_path else None);
            slow_query_us = (if observed then 50_000.0 else 0.0);
          }
          ~rulebase ~db)
      ()
  in
  while Atomic.get port = 0 do
    Thread.delay 0.01
  done;
  (thread, Atomic.get port, Atomic.get mport)

let client port pool ~seed ~n =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  let lat = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let q = pool.(Stats.Rng.categorical rng zipf_weights) in
    let t0 = Unix.gettimeofday () in
    ignore (Serve.Client.request c q);
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e3
  done;
  Serve.Client.close c;
  lat

(* One GET /metrics, returning the body length (0 on any failure — the
   scraper must never kill the benchmark). This is plain HTTP against
   the metrics responder, not the query protocol, so it stays a raw
   socket. *)
let scrape_once mport =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, mport)) with
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    0
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let n = ref 0 in
    (try
       output_string oc "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
       flush oc;
       try
         while true do
           n := !n + String.length (input_line ic) + 1
         done
       with End_of_file -> ()
     with Sys_error _ -> ());
    close_in_noerr ic;
    !n

let shutdown_server port =
  let c = Serve.Client.connect ~proto:`Lines ~port () in
  ignore (Serve.Client.command c "SHUTDOWN");
  Serve.Client.close c

type row = {
  mode : mode;
  queries : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  scrapes : int;
  log_bytes : int;
}

let run_row ~mode ~db ~rulebase ~pool =
  let clients = n_clients () in
  let per_client = total_queries () / clients in
  let log_path = Filename.temp_file "e21_obs" ".jsonl" in
  let thread, port, mport = start_server ~mode ~log_path ~db ~rulebase in
  let stop = Atomic.make false in
  let scrapes = ref 0 in
  let scraper =
    if mode = On_scraped then
      Some
        (Thread.create
           (fun () ->
             let interval = 1.0 /. float_of_int (Int.max 1 (scrape_hz ())) in
             while not (Atomic.get stop) do
               if scrape_once mport > 0 then incr scrapes;
               Thread.delay interval
             done)
           ())
    else None
  in
  let results = Array.make clients [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- client port pool ~seed:(100 + i) ~n:per_client)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Option.iter Thread.join scraper;
  shutdown_server port;
  Thread.join thread;
  let log_bytes =
    match Unix.stat log_path with
    | { Unix.st_size; _ } -> st_size
    | exception Unix.Unix_error _ -> 0
  in
  (try Sys.remove log_path with Sys_error _ -> ());
  let lats =
    Array.to_list results |> List.concat_map Array.to_list
    |> List.sort Float.compare |> Array.of_list
  in
  let n = Array.length lats in
  let pct p = lats.(Int.min (n - 1) (int_of_float (float_of_int n *. p))) in
  {
    mode;
    queries = clients * per_client;
    wall_s = wall;
    qps = float_of_int (clients * per_client) /. wall;
    p50_ms = pct 0.50;
    p99_ms = pct 0.99;
    scrapes = !scrapes;
    log_bytes;
  }

let json_of_row r =
  Printf.sprintf
    "{\"mode\":\"%s\",\"queries\":%d,\"wall_s\":%.3f,\"qps\":%.1f,\
     \"p50_ms\":%.3f,\"p99_ms\":%.3f,\"scrapes\":%d,\"log_bytes\":%d}"
    (mode_name r.mode) r.queries r.wall_s r.qps r.p50_ms r.p99_ms r.scrapes
    r.log_bytes

let run () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop =
    Workload.Genealogy.populate (Stats.Rng.create 23L) ~n_people:(n_people ())
  in
  let db = Workload.Genealogy.db pop in
  let pool = make_pool (Array.of_list (Workload.Genealogy.people pop)) in
  let best_row mode =
    List.init (reps ()) (fun _ -> run_row ~mode ~db ~rulebase ~pool)
    |> List.sort (fun a b -> Float.compare b.qps a.qps)
    |> List.hd
  in
  let rows = List.map best_row [ Off; On; On_scraped; On_debug ] in
  let off = List.nth rows 0 and on = List.nth rows 1 in
  let scraped = List.nth rows 2 and debug = List.nth rows 3 in
  let overhead a = (1.0 -. (a.qps /. off.qps)) *. 100.0 in
  Table.print
    ~title:
      (Printf.sprintf
         "E21: observability overhead on the serve path (%d people, Zipf-%g \
          pool of %d, %d clients; on = metrics + info JSONL + slow-query \
          log, scraper at %d Hz, debug = one record per query)"
         (n_people ()) zipf_s pool_size (n_clients ()) (scrape_hz ()))
    ~header:
      [
        "observability"; "queries"; "wall s"; "q/s"; "p50 ms"; "p99 ms";
        "scrapes"; "log KiB";
      ]
    (List.map
       (fun r ->
         [
           mode_name r.mode;
           Table.i r.queries;
           Table.f2 r.wall_s;
           Table.f1 r.qps;
           Table.f3 r.p50_ms;
           Table.f3 r.p99_ms;
           Table.i r.scrapes;
           Table.i (r.log_bytes / 1024);
         ])
       rows);
  Table.note
    "overhead vs off: on %.1f%%, on+scrape %.1f%%, on+debug %.1f%% \
     (acceptance bar: < 5%% for on)\n"
    (overhead on) (overhead scraped) (overhead debug);
  match Sys.getenv_opt "E21_JSON" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"experiment\":\"e21\",\"queries\":%d,\"clients\":%d,\"people\":%d,\
       \"pool\":%d,\"zipf_s\":%g,\"scrape_hz\":%d,\"rows\":[%s],\
       \"overhead_on_pct\":%.2f,\"overhead_scraped_pct\":%.2f,\
       \"overhead_debug_pct\":%.2f,\"bar_pct\":5.0}\n"
      (total_queries ()) (n_clients ()) (n_people ()) pool_size zipf_s
      (scrape_hz ())
      (String.concat "," (List.map json_of_row rows))
      (overhead on) (overhead scraped) (overhead debug);
    close_out oc;
    Table.note "wrote %s\n" path
